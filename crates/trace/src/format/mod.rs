//! Textual trace formats: the pipe-separated "std" format and CSV.
//!
//! The authors' RAPID tool consumes traces produced by RVPredict's logger in
//! a simple line-oriented format; we model that with the *std* format:
//!
//! ```text
//! # comments and blank lines are ignored
//! t1|acq(l)|Account.java:41
//! t1|r(balance)|Account.java:42
//! t1|w(balance)|Account.java:42
//! t1|rel(l)|Account.java:43
//! main|fork(t1)|Main.java:10
//! t1|acq(l)
//! ```
//!
//! Every line is `<thread>|<op>(<target>)|<location>`; `<op>` is one of
//! `acq`, `rel`, `r`, `w`, `fork`, `join`; the location field is optional
//! (`t1|acq(l)` and `t1|acq(l)|` are both accepted, and the event gets a
//! synthetic `line<N>` location).  The CSV flavour uses commas instead of
//! pipes (`thread,op(target),location`) and may start with a
//! `thread,op,location` header line, which is skipped wherever it appears
//! as the first content line (comments and blank lines are ignored before
//! it, like everywhere else).
//!
//! # Streaming
//!
//! [`StreamReader`] is the classic implementation: an iterator of
//! [`Result<Event, ParseError>`] over any [`BufRead`] that interns names on
//! the fly and never materializes a [`Trace`].  The batch entry points
//! ([`parse_std`], [`parse_csv`]) are thin wrappers that drain a reader and
//! collect the events into a [`Trace`], so the two paths cannot diverge.
//!
//! # Zero-copy ingestion and the binary wire format
//!
//! Two faster ingestion paths live in the submodules and are re-exported
//! here:
//!
//! * [`bytes`]: [`parse_std_bytes`] parses lines straight from `&[u8]`
//!   (no per-line `String`, no whole-line UTF-8 validation) and
//!   [`MmapReader`] drives it over a memory-mapped trace file.  The string
//!   parser above delegates to the same core, so the two cannot drift.
//! * [`binary`]: the fixed-width *rapid wire format* (`.rwf`) —
//!   [`BinReader`] / [`BinWriter`] / [`to_rwf_bytes`] — which removes
//!   string handling from the hot path entirely (names live once in the
//!   header's string tables; each event is a 13-byte frame).
//!
//! [`AnyReader`] unifies all three behind one iterator and auto-detects
//! binary inputs by their magic bytes ([`looks_binary`]), which is what the
//! `engine` CLI's `stream`/`batch`/`convert` subcommands use.
//!
//! The normative specification of all three encodings — grammar,
//! optional-location forms, header and string-table layout, endianness and
//! error semantics — is `docs/FORMAT.md` at the repository root; every claim
//! there is pinned by a golden-fixture or round-trip test.

use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, Read};
use std::path::Path;

use memmap2::Mmap;
use rapid_vc::ThreadId;

use crate::builder::Interner;
use crate::event::{Event, EventKind};
use crate::ids::{Location, LockId, VarId};
use crate::trace::Trace;

pub mod binary;
pub mod bytes;
pub mod wire;

pub use binary::{
    looks_binary, to_rwf_bytes, to_rwf_stream_bytes, write_rwf_file, BinReader, BinWriter,
    RwfStreamWriter, FRAME_LEN, MAGIC, NO_LOCATION, VERSION, VERSION_STREAM,
};
pub use bytes::{parse_std_bytes, MmapReader};

/// Why a trace file could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// The line does not have the required number of fields.
    MissingField,
    /// The operation mnemonic is not one of `acq`, `rel`, `r`, `w`, `fork`, `join`.
    UnknownOp(String),
    /// The operation field is not of the form `op(target)`.
    MalformedOp(String),
    /// The underlying reader failed (streaming only).
    Io(String),
    /// Binary input does not start with the `.rwf` magic bytes.
    BadMagic,
    /// Binary input declares a wire-format version this build cannot read.
    BadVersion(u16),
    /// Binary input ends before the structure its header declares.
    Truncated,
    /// Binary input continues past the last declared frame.
    TrailingBytes,
    /// A binary frame carries an operation code outside `0..=5`.
    BadOpCode(u8),
    /// A v2 (streamed) container carries an unknown block or table tag.
    BadBlockTag(u8),
    /// A binary frame references a string-table entry that does not exist.
    BadNameId {
        /// Which table (`threads`, `locks`, `variables`, `locations`).
        table: &'static str,
        /// The out-of-range id.
        id: u32,
        /// The table's actual length.
        len: u32,
    },
}

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.  For binary input the
    /// field carries the 1-based *frame* number instead (0 for header
    /// errors).
    pub line: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseErrorKind::MissingField => {
                write!(f, "line {}: expected `thread|op(target)|location`", self.line)
            }
            ParseErrorKind::UnknownOp(op) => {
                write!(f, "line {}: unknown operation `{op}`", self.line)
            }
            ParseErrorKind::MalformedOp(op) => {
                write!(f, "line {}: malformed operation `{op}`, expected `op(target)`", self.line)
            }
            ParseErrorKind::Io(error) => {
                write!(f, "line {}: read error: {error}", self.line)
            }
            ParseErrorKind::BadMagic => {
                write!(f, "not a rapid wire format file (bad magic bytes)")
            }
            ParseErrorKind::BadVersion(version) => {
                write!(
                    f,
                    "unsupported wire format version {version} \
(this build reads {VERSION} and {VERSION_STREAM})"
                )
            }
            ParseErrorKind::Truncated => {
                write!(f, "truncated wire format input (frame {})", self.line)
            }
            ParseErrorKind::TrailingBytes => {
                write!(f, "trailing bytes after the last declared frame")
            }
            ParseErrorKind::BadOpCode(op) => {
                write!(f, "frame {}: unknown operation code {op}", self.line)
            }
            ParseErrorKind::BadBlockTag(tag) => {
                write!(f, "unknown v2 container block or table tag {tag}")
            }
            ParseErrorKind::BadNameId { table, id, len } => {
                write!(f, "frame {}: {table} id {id} out of range (table has {len})", self.line)
            }
        }
    }
}

impl Error for ParseError {}

/// Interned name tables built up while streaming a trace, and a factory for
/// the next [`Event`].
///
/// Names are assigned dense ids in order of first appearance in the event
/// stream (note this can differ from the id assignment of the
/// [`TraceBuilder`](crate::TraceBuilder) that produced a file, which interns
/// names at declaration time — compare streamed and batch results by *name*,
/// not by raw id, unless both sides came from the same reader).
#[derive(Debug, Default, Clone)]
pub struct StreamNames {
    threads: Interner,
    locks: Interner,
    variables: Interner,
    locations: Interner,
}

impl StreamNames {
    /// Looks up a thread's name.
    pub fn thread_name(&self, thread: ThreadId) -> Option<&str> {
        self.threads.name(thread.raw())
    }

    /// Looks up a lock's name.
    pub fn lock_name(&self, lock: LockId) -> Option<&str> {
        self.locks.name(lock.raw())
    }

    /// Looks up a variable's name.
    pub fn variable_name(&self, var: VarId) -> Option<&str> {
        self.variables.name(var.raw())
    }

    /// Looks up a location's name.
    pub fn location_name(&self, location: Location) -> Option<&str> {
        if location.is_unknown() {
            return None;
        }
        self.locations.name(location.raw())
    }

    /// Number of distinct threads seen so far.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Number of distinct locks seen so far.
    pub fn num_locks(&self) -> usize {
        self.locks.len()
    }

    /// Number of distinct variables seen so far.
    pub fn num_variables(&self) -> usize {
        self.variables.len()
    }

    /// Number of distinct locations seen so far.
    pub fn num_locations(&self) -> usize {
        self.locations.len()
    }

    /// Builds name tables from complete per-kind name lists (the binary
    /// reader's string tables).
    pub(crate) fn from_tables(
        threads: Vec<String>,
        locks: Vec<String>,
        variables: Vec<String>,
        locations: Vec<String>,
    ) -> Self {
        StreamNames {
            threads: Interner::from_names(threads),
            locks: Interner::from_names(locks),
            variables: Interner::from_names(variables),
            locations: Interner::from_names(locations),
        }
    }

    /// Decomposes into `(threads, locks, variables, locations)` name lists.
    pub(crate) fn into_tables(self) -> (Vec<String>, Vec<String>, Vec<String>, Vec<String>) {
        (
            self.threads.into_names(),
            self.locks.into_names(),
            self.variables.into_names(),
            self.locations.into_names(),
        )
    }
}

/// A push-free streaming parser: an iterator of [`Event`]s over any
/// [`BufRead`], in `O(names)` memory — the trace itself is never stored.
///
/// # Examples
///
/// ```
/// use rapid_trace::format::StreamReader;
///
/// let input = "t1|w(x)|A.java:1\nt2|r(x)|B.java:2\n";
/// let mut reader = StreamReader::std(input.as_bytes());
/// let events: Vec<_> = reader.by_ref().collect::<Result<_, _>>().unwrap();
/// assert_eq!(events.len(), 2);
/// assert_ne!(events[0].thread(), events[1].thread());
/// assert_eq!(reader.names().num_variables(), 1);
/// ```
#[derive(Debug)]
pub struct StreamReader<R> {
    reader: R,
    separator: u8,
    /// 1-based number of the line most recently read.
    line: usize,
    /// Whether a content (non-blank, non-comment) line has been consumed
    /// already — the CSV header is only recognized as the first one.
    seen_content: bool,
    /// Buffer reused across lines.  Raw bytes: like the zero-copy readers,
    /// this path never UTF-8-validates whole lines (FORMAT.md §1.4 requires
    /// invalid bytes in names to be replaced, not rejected).
    buffer: Vec<u8>,
    names: StreamNames,
    next_event: u32,
    failed: bool,
}

impl<R: BufRead> StreamReader<R> {
    /// Creates a reader for the std (pipe-separated) format.
    pub fn std(reader: R) -> Self {
        StreamReader::with_separator(reader, b'|')
    }

    /// Creates a reader for the CSV format.
    pub fn csv(reader: R) -> Self {
        StreamReader::with_separator(reader, b',')
    }

    fn with_separator(reader: R, separator: u8) -> Self {
        StreamReader {
            reader,
            separator,
            line: 0,
            seen_content: false,
            buffer: Vec::new(),
            names: StreamNames::default(),
            next_event: 0,
            failed: false,
        }
    }

    /// The name tables interned so far (grow as events are read).
    pub fn names(&self) -> &StreamNames {
        &self.names
    }

    /// Consumes the reader, returning the final name tables.
    pub fn into_names(self) -> StreamNames {
        self.names
    }

    /// Number of events produced so far.
    pub fn events_read(&self) -> usize {
        self.next_event as usize
    }

    /// 1-based number of the last line read (0 before the first line).
    pub fn line(&self) -> usize {
        self.line
    }
}

impl<R: BufRead> Iterator for StreamReader<R> {
    type Item = Result<Event, ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            self.buffer.clear();
            match self.reader.read_until(b'\n', &mut self.buffer) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(error) => {
                    self.failed = true;
                    return Some(Err(ParseError {
                        line: self.line + 1,
                        kind: ParseErrorKind::Io(error.to_string()),
                    }));
                }
            }
            self.line += 1;
            if bytes::is_ignored_line(&self.buffer) {
                continue;
            }
            let is_first_content = !self.seen_content;
            self.seen_content = true;
            // The byte-level core is the single parsing implementation;
            // this reader only adds the `BufRead` line loop on top.
            match bytes::parse_content_line_bytes(
                &self.buffer,
                self.line,
                self.separator,
                is_first_content,
                &mut self.names,
                &mut self.next_event,
            ) {
                Ok(Some(event)) => return Some(Ok(event)),
                Ok(None) => continue, // skipped CSV header
                Err(error) => {
                    self.failed = true;
                    return Some(Err(error));
                }
            }
        }
    }
}

/// Drains a [`StreamReader`] into a fully materialized [`Trace`]
/// (batch = stream + collect).
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
pub fn collect_trace<R: BufRead>(mut reader: StreamReader<R>) -> Result<Trace, ParseError> {
    let mut events = Vec::new();
    for event in reader.by_ref() {
        events.push(event?);
    }
    let names = reader.into_names();
    let (threads, locks, variables, locations) = names.into_tables();
    Ok(Trace::from_parts(events, threads, locks, variables, locations))
}

/// Which *text* flavour to assume for non-binary input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TextFormat {
    /// Pipe-separated std format.
    Std,
    /// Comma-separated CSV (optional header line).
    Csv,
}

impl TextFormat {
    /// Guesses the flavour from a path's extension (`.csv` → CSV, anything
    /// else → std).
    pub fn from_path(path: impl AsRef<Path>) -> TextFormat {
        match path.as_ref().extension().and_then(|extension| extension.to_str()) {
            Some(extension) if extension.eq_ignore_ascii_case("csv") => TextFormat::Csv,
            _ => TextFormat::Std,
        }
    }
}

/// The buffered text reader behind [`AnyReader::Buffered`]: the bytes
/// sniffed for format detection, chained back in front of the rest of the
/// input — no seeking, so pipes and other non-seekable sources work.
pub type BufferedText = StreamReader<BufReader<io::Chain<io::Cursor<Vec<u8>>, File>>>;

/// One reader over any trace encoding: buffered text, memory-mapped text, or
/// the binary wire format — the event source behind `engine stream`/`batch`.
///
/// [`AnyReader::open`] sniffs the file's first bytes and routes `.rwf` input
/// to [`BinReader`] regardless of the requested text flavour, so callers
/// never need to know what a file contains.
#[derive(Debug)]
pub enum AnyReader {
    /// Text through a `BufReader` (the pre-mmap path; one copy per line).
    Buffered(BufferedText),
    /// Text over a memory map (zero-copy).
    Mapped(MmapReader),
    /// Binary wire format over a memory map (zero-copy, no string work).
    Binary(BinReader),
}

impl AnyReader {
    /// Opens `path`, auto-detecting the binary format by magic bytes; text
    /// files are read through a memory map when `use_mmap` is set and a
    /// `BufReader` otherwise.
    ///
    /// Non-seekable and non-mappable inputs (pipes, fifos) work on every
    /// path: the mmap shim falls back to reading the input into an owned
    /// buffer, and the `BufRead` path chains the sniffed bytes back in
    /// front instead of seeking.
    ///
    /// # Errors
    ///
    /// I/O failures surface as [`ParseErrorKind::Io`]; a detected binary
    /// file with an unsound header fails as in [`BinReader::from_mmap`].
    pub fn open(
        path: impl AsRef<Path>,
        text: TextFormat,
        use_mmap: bool,
    ) -> Result<AnyReader, ParseError> {
        let io_error =
            |error: io::Error| ParseError { line: 0, kind: ParseErrorKind::Io(error.to_string()) };
        let mut file = File::open(&path).map_err(io_error)?;

        if use_mmap {
            // Map (or fallback-read) first, sniff the mapped bytes: nothing
            // is consumed from the source, so no bytes can be lost.
            let data = Mmap::map(&file).map_err(io_error)?;
            if looks_binary(&data) {
                return Ok(AnyReader::Binary(BinReader::from_mmap(data)?));
            }
            return Ok(AnyReader::Mapped(match text {
                TextFormat::Std => MmapReader::std_mmap(data),
                TextFormat::Csv => MmapReader::csv_mmap(data),
            }));
        }

        // BufRead path: sniff the first bytes, then chain them back in
        // front of the remaining input (works on non-seekable sources).
        let mut magic = [0u8; 4];
        let mut got = 0;
        while got < magic.len() {
            match file.read(&mut magic[got..]).map_err(io_error)? {
                0 => break,
                n => got += n,
            }
        }
        if looks_binary(&magic[..got]) {
            let mut contents = magic[..got].to_vec();
            file.read_to_end(&mut contents).map_err(io_error)?;
            return Ok(AnyReader::Binary(BinReader::from_bytes(contents)?));
        }
        let chained = io::Cursor::new(magic[..got].to_vec()).chain(file);
        let buffered = BufReader::new(chained);
        Ok(AnyReader::Buffered(match text {
            TextFormat::Std => StreamReader::std(buffered),
            TextFormat::Csv => StreamReader::csv(buffered),
        }))
    }

    /// The name tables seen so far (complete up front for binary input,
    /// growing for text).
    pub fn names(&self) -> &StreamNames {
        match self {
            AnyReader::Buffered(reader) => reader.names(),
            AnyReader::Mapped(reader) => reader.names(),
            AnyReader::Binary(reader) => reader.names(),
        }
    }

    /// Consumes the reader, returning the name tables.
    pub fn into_names(self) -> StreamNames {
        match self {
            AnyReader::Buffered(reader) => reader.into_names(),
            AnyReader::Mapped(reader) => reader.into_names(),
            AnyReader::Binary(reader) => reader.into_names(),
        }
    }

    /// Number of events produced so far.
    pub fn events_read(&self) -> usize {
        match self {
            AnyReader::Buffered(reader) => reader.events_read(),
            AnyReader::Mapped(reader) => reader.events_read(),
            AnyReader::Binary(reader) => reader.events_read(),
        }
    }

    /// A short human-readable label of the ingestion path in use.
    pub fn source(&self) -> &'static str {
        match self {
            AnyReader::Buffered(_) => "text/bufread",
            AnyReader::Mapped(_) => "text/mmap",
            AnyReader::Binary(_) => "binary/mmap",
        }
    }
}

impl From<BufferedText> for AnyReader {
    fn from(reader: BufferedText) -> Self {
        AnyReader::Buffered(reader)
    }
}

impl From<MmapReader> for AnyReader {
    fn from(reader: MmapReader) -> Self {
        AnyReader::Mapped(reader)
    }
}

impl From<BinReader> for AnyReader {
    fn from(reader: BinReader) -> Self {
        AnyReader::Binary(reader)
    }
}

impl Iterator for AnyReader {
    type Item = Result<Event, ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            AnyReader::Buffered(reader) => reader.next(),
            AnyReader::Mapped(reader) => reader.next(),
            AnyReader::Binary(reader) => reader.next(),
        }
    }
}

/// Drains any reader into a fully materialized [`Trace`] (the batch path of
/// the `engine` CLI, format-agnostic).
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
pub fn collect_any(mut reader: AnyReader) -> Result<Trace, ParseError> {
    let mut events = Vec::new();
    for event in reader.by_ref() {
        events.push(event?);
    }
    let (threads, locks, variables, locations) = reader.into_names().into_tables();
    Ok(Trace::from_parts(events, threads, locks, variables, locations))
}

/// Parses a trace in the std (pipe-separated) format.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line number.
pub fn parse_std(input: &str) -> Result<Trace, ParseError> {
    collect_trace(StreamReader::std(input.as_bytes()))
}

/// Parses a trace in CSV format (`thread,op(target),location`, optionally
/// preceded by a `thread,op,location` header).
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line number.
pub fn parse_csv(input: &str) -> Result<Trace, ParseError> {
    collect_trace(StreamReader::csv(input.as_bytes()))
}

fn event_line(trace: &Trace, event_index: usize, separator: char) -> String {
    let event = &trace.events()[event_index];
    let thread = trace
        .thread_name(event.thread())
        .map(str::to_owned)
        .unwrap_or_else(|| event.thread().to_string());
    let target = match event.kind() {
        EventKind::Acquire(lock) | EventKind::Release(lock) => {
            trace.lock_name(lock).map(str::to_owned).unwrap_or_else(|| lock.to_string())
        }
        EventKind::Read(var) | EventKind::Write(var) => {
            trace.variable_name(var).map(str::to_owned).unwrap_or_else(|| var.to_string())
        }
        EventKind::Fork(thread) | EventKind::Join(thread) => {
            trace.thread_name(thread).map(str::to_owned).unwrap_or_else(|| thread.to_string())
        }
    };
    // An unknown location serializes as the documented absent-location form
    // (two fields), which re-parses into per-event synthetic `line<N>`
    // locations — not as a bogus shared literal.
    match trace.location_name(event.location()) {
        Some(location) => format!(
            "{thread}{separator}{op}({target}){separator}{location}",
            op = event.kind().mnemonic()
        ),
        None => format!("{thread}{separator}{op}({target})", op = event.kind().mnemonic()),
    }
}

/// Serializes a trace to the std (pipe-separated) format.
///
/// The writers do not escape: a name containing the separator, a newline,
/// surrounding whitespace, or (for thread names) a leading `#` cannot be
/// represented in a text flavour and would re-parse as something else.
/// [`write_trace_file`] (used by `engine convert`) rejects such traces;
/// this in-memory serializer leaves the check to the caller.
pub fn write_std(trace: &Trace) -> String {
    let mut out = String::new();
    for index in 0..trace.len() {
        out.push_str(&event_line(trace, index, '|'));
        out.push('\n');
    }
    out
}

/// Returns the first interned name that cannot be represented in a text
/// flavour with `separator` (see [`write_std`]), or `None` when the whole
/// trace serializes faithfully.
fn unwritable_name(trace: &Trace, separator: char) -> Option<String> {
    let broken = |name: &str| {
        name.is_empty()
            || name.contains(separator)
            || name.contains('\n')
            || name.trim_ascii() != name
    };
    let tables = [
        (0..trace.num_threads()).map(|id| trace.thread_name(ThreadId::new(id as u32))).collect(),
        (0..trace.num_locks()).map(|id| trace.lock_name(LockId::new(id as u32))).collect(),
        (0..trace.num_variables()).map(|id| trace.variable_name(VarId::new(id as u32))).collect(),
        (0..trace.num_locations())
            .map(|id| trace.location_name(Location::new(id as u32)))
            .collect(),
    ];
    let [threads, locks, variables, locations]: [Vec<Option<&str>>; 4] = tables;
    for name in threads.iter().flatten() {
        // Thread names open the line, where `#` means comment.
        if broken(name) || name.starts_with('#') {
            return Some((*name).to_owned());
        }
    }
    for name in locks.iter().chain(&variables).chain(&locations).flatten() {
        if broken(name) {
            return Some((*name).to_owned());
        }
    }
    None
}

/// Writes `trace` to `path`, choosing the encoding by extension
/// (ASCII case-insensitive): `.rwf` is the binary wire format, `.csv` is
/// CSV, anything else is std text.  The single extension→encoding rule
/// shared by `engine convert` and `rapid_gen::emit`.
///
/// # Errors
///
/// Propagates file-creation and write errors.  For the text flavours,
/// fails with [`io::ErrorKind::InvalidData`] if the trace interns a name
/// the flavour cannot represent (contains the separator or a newline,
/// surrounded by whitespace, empty, or a `#`-leading thread name) — the
/// binary format has no such restriction, so `.rwf` output always works.
pub fn write_trace_file(trace: &Trace, path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    let reject = |separator: char| match unwritable_name(trace, separator) {
        Some(name) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "name {name:?} cannot be represented in the `{separator}`-separated text \
format (convert to .rwf instead)"
            ),
        )),
        None => Ok(()),
    };
    match path.extension().and_then(|extension| extension.to_str()) {
        Some(extension) if extension.eq_ignore_ascii_case("rwf") => write_rwf_file(trace, path),
        Some(extension) if extension.eq_ignore_ascii_case("csv") => {
            reject(',')?;
            std::fs::write(path, write_csv(trace))
        }
        _ => {
            reject('|')?;
            std::fs::write(path, write_std(trace))
        }
    }
}

/// Serializes a trace to CSV (with a header line).  The caveat of
/// [`write_std`] applies, with `,` as the separator.
pub fn write_csv(trace: &Trace) -> String {
    let mut out = String::from("thread,op,location\n");
    for index in 0..trace.len() {
        out.push_str(&event_line(trace, index, ','));
        out.push('\n');
    }
    out
}

/// Convenience: returns the thread that performs the `index`-th event of a
/// parsed trace (used by round-trip tests).
pub fn thread_of(trace: &Trace, index: usize) -> ThreadId {
    trace.events()[index].thread()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{LockId, VarId};
    use crate::TraceBuilder;

    const SAMPLE: &str = "\
# a small trace
t1|acq(l)|A.java:1
t1|w(x)|A.java:2
t1|rel(l)|A.java:3

t2|acq(l)|B.java:7
t2|r(x)|B.java:8
t2|rel(l)|B.java:9
main|fork(t1)|Main.java:1
";

    #[test]
    fn parses_std_format() {
        let trace = parse_std(SAMPLE).unwrap();
        assert_eq!(trace.len(), 7);
        assert_eq!(trace.num_threads(), 3);
        assert_eq!(trace.num_locks(), 1);
        assert_eq!(trace.num_variables(), 1);
        assert_eq!(trace[0].kind(), EventKind::Acquire(LockId::new(0)));
        assert_eq!(trace[4].kind(), EventKind::Read(VarId::new(0)));
        assert!(trace[6].kind().is_thread_op());
        assert_eq!(trace.location_name(trace[1].location()), Some("A.java:2"));
    }

    #[test]
    fn parses_csv_with_header() {
        let csv = "thread,op,location\nt1,acq(l),A:1\nt1,w(x),A:2\nt1,rel(l),A:3\n";
        let trace = parse_csv(csv).unwrap();
        assert_eq!(trace.len(), 3);
        assert!(trace.validate().is_ok());
    }

    #[test]
    fn csv_header_is_skipped_after_comments_and_blank_lines() {
        // Regression: the header used to be recognized only as the physical
        // first line, so a leading comment made parsing fail even though
        // comments are documented as ignored everywhere.
        let csv = "# logged by rapid\n\nthread,op,location\nt1,acq(l),A:1\nt1,rel(l),A:2\n";
        let trace = parse_csv(csv).unwrap();
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn location_is_optional() {
        let trace = parse_std("t1|w(x)\nt1|r(x)").unwrap();
        assert_eq!(trace.len(), 2);
        // Default locations are still distinct.
        assert_ne!(trace[0].location(), trace[1].location());
    }

    #[test]
    fn location_is_optional_in_both_flavours() {
        // `t1|acq(l)` with no third field, with a trailing separator, and the
        // CSV equivalents must all parse (the documented optional-location
        // form).
        for input in ["t1|acq(l)\nt1|rel(l)", "t1|acq(l)|\nt1|rel(l)|"] {
            let trace = parse_std(input).unwrap_or_else(|e| panic!("{input:?}: {e}"));
            assert_eq!(trace.len(), 2);
            assert_eq!(trace.location_name(trace[0].location()), Some("line1"));
        }
        for input in ["t1,acq(l)\nt1,rel(l)", "t1,acq(l),\nt1,rel(l),"] {
            let trace = parse_csv(input).unwrap_or_else(|e| panic!("{input:?}: {e}"));
            assert_eq!(trace.len(), 2);
        }
    }

    #[test]
    fn unknown_op_is_an_error() {
        let err = parse_std("t1|lock(l)|A:1").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(matches!(err.kind, ParseErrorKind::UnknownOp(_)));
        assert!(err.to_string().contains("unknown operation"));
    }

    #[test]
    fn malformed_op_is_an_error() {
        let err = parse_std("t1|acq l|A:1").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::MalformedOp(_)));
        let err = parse_std("t1|acq()|A:1").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::MalformedOp(_)));
    }

    #[test]
    fn missing_field_is_an_error() {
        let err = parse_std("t1").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::MissingField);
        let err = parse_std("\n\nt1|").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn stream_reader_yields_events_without_a_trace() {
        let mut reader = StreamReader::std(SAMPLE.as_bytes());
        let mut count = 0;
        for event in reader.by_ref() {
            let event = event.expect("sample parses");
            assert_eq!(event.id().index(), count);
            count += 1;
        }
        assert_eq!(count, 7);
        assert_eq!(reader.events_read(), 7);
        let names = reader.names();
        assert_eq!(names.num_threads(), 3);
        assert_eq!(names.num_locks(), 1);
        assert_eq!(names.thread_name(ThreadId::new(0)), Some("t1"));
        assert_eq!(names.lock_name(LockId::new(0)), Some("l"));
        assert_eq!(names.variable_name(VarId::new(0)), Some("x"));
    }

    #[test]
    fn bufread_path_replaces_invalid_utf8_in_names() {
        // FORMAT.md §1.4: invalid UTF-8 inside a *name* must not abort
        // ingestion on any path.  Regression: `read_line` used to validate
        // whole lines, so the BufRead path rejected what the zero-copy
        // paths accepted.
        let mut input = b"t1|w(x".to_vec();
        input.push(0xFF);
        input.extend_from_slice(b")|A:1\n");
        let mut reader = StreamReader::std(&input[..]);
        let event = reader.next().unwrap().expect("invalid UTF-8 in a name is not fatal");
        assert!(event.kind().is_write());
        let name = reader.names().variable_name(VarId::new(0)).unwrap();
        assert!(name.contains('\u{FFFD}'));
    }

    #[test]
    fn any_reader_does_not_lose_sniffed_bytes_on_fallback_inputs() {
        // Regression: `AnyReader::open` used to consume 4 magic-sniff bytes
        // before handing the file to the readers, corrupting any input the
        // mmap shim falls back to reading sequentially (pipes, fifos).  On
        // unix, exercise a real fifo through both reader modes.
        #[cfg(unix)]
        {
            let dir = std::env::temp_dir();
            for (mode, use_mmap) in [("mmap", true), ("bufread", false)] {
                let path = dir.join(format!("rapid-anyreader-fifo-{mode}-{}", std::process::id()));
                std::fs::remove_file(&path).ok();
                let status =
                    std::process::Command::new("mkfifo").arg(&path).status().expect("mkfifo runs");
                assert!(status.success(), "mkfifo failed");
                let writer_path = path.clone();
                let writer = std::thread::spawn(move || {
                    std::fs::write(&writer_path, "t1|w(x)|A:1\nt2|r(x)|B:2\n").expect("fifo write");
                });
                let reader = AnyReader::open(&path, TextFormat::Std, use_mmap).expect("fifo opens");
                let events: Vec<Event> =
                    reader.collect::<Result<_, _>>().expect("all bytes arrive, none lost");
                writer.join().expect("writer thread");
                std::fs::remove_file(&path).ok();
                assert_eq!(events.len(), 2, "{mode}: first line must not be corrupted");
                assert!(events[0].kind().is_write(), "{mode}");
            }
        }
    }

    #[test]
    fn unknown_locations_serialize_as_the_absent_location_form() {
        use crate::event::EventId;
        let events = vec![
            Event::new(
                EventId::new(0),
                ThreadId::new(0),
                EventKind::Write(VarId::new(0)),
                Location::UNKNOWN,
            ),
            Event::new(
                EventId::new(1),
                ThreadId::new(0),
                EventKind::Read(VarId::new(0)),
                Location::UNKNOWN,
            ),
        ];
        let trace = Trace::from_parts(
            events,
            vec!["t".to_owned()],
            Vec::new(),
            vec!["x".to_owned()],
            Vec::new(),
        );
        assert_eq!(write_std(&trace), "t|w(x)\nt|r(x)\n");
        // Re-parsing synthesizes distinct locations, not one shared literal.
        let reparsed = parse_std(&write_std(&trace)).unwrap();
        assert_ne!(reparsed[0].location(), reparsed[1].location());
        assert_eq!(reparsed.location_name(reparsed[0].location()), Some("line1"));
    }

    #[test]
    fn write_trace_file_rejects_unrepresentable_names() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();

        // A comma inside a name is legal std but unrepresentable in CSV.
        let trace = parse_std("t1|w(a,b)|A:1\n").unwrap();
        let csv_path = dir.join(format!("rapid-reject-{pid}.csv"));
        let error = write_trace_file(&trace, &csv_path).unwrap_err();
        assert_eq!(error.kind(), std::io::ErrorKind::InvalidData);
        let std_path = dir.join(format!("rapid-reject-{pid}.std"));
        write_trace_file(&trace, &std_path).expect("std can represent a comma");
        assert_eq!(parse_std(&std::fs::read_to_string(&std_path).unwrap()).unwrap().len(), 1);
        std::fs::remove_file(&std_path).ok();

        // A `#`-leading thread name (only constructible outside the text
        // parsers — builder or .rwf) would re-parse as a comment; binary
        // output has no restriction.
        let mut builder = crate::TraceBuilder::new();
        let thread = builder.thread("#t");
        let var = builder.variable("x");
        builder.write(thread, var);
        let trace = builder.finish();
        assert!(write_trace_file(&trace, &std_path).is_err());
        let rwf_path = dir.join(format!("rapid-reject-{pid}.rwf"));
        write_trace_file(&trace, &rwf_path).expect("the wire format represents any name");
        assert_eq!(BinReader::open(&rwf_path).unwrap().frame_count(), 1);
        std::fs::remove_file(&rwf_path).ok();
    }

    #[test]
    fn write_trace_file_dispatches_extensions_case_insensitively() {
        let trace = parse_std("t1|w(x)|A:1\nt2|r(x)|B:2\n").unwrap();
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let upper = dir.join(format!("rapid-dispatch-{pid}.RWF"));
        write_trace_file(&trace, &upper).unwrap();
        let bytes = std::fs::read(&upper).unwrap();
        std::fs::remove_file(&upper).ok();
        assert!(looks_binary(&bytes), ".RWF must dispatch to the binary writer");
    }

    #[test]
    fn stream_reader_stops_at_the_first_error() {
        let input = "t1|w(x)|A:1\nt1|nope(x)|A:2\nt1|r(x)|A:3\n";
        let mut reader = StreamReader::std(input.as_bytes());
        assert!(reader.next().unwrap().is_ok());
        let err = reader.next().unwrap().unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, ParseErrorKind::UnknownOp(_)));
        assert!(reader.next().is_none(), "the reader fuses after an error");
    }

    #[test]
    fn stream_and_batch_agree_on_the_sample() {
        let trace = parse_std(SAMPLE).unwrap();
        let streamed: Vec<Event> =
            StreamReader::std(SAMPLE.as_bytes()).collect::<Result<_, _>>().unwrap();
        assert_eq!(trace.events(), streamed.as_slice());
    }

    #[test]
    fn roundtrip_std() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("worker-1");
        let t2 = b.thread("worker-2");
        let l = b.lock("mutex");
        let x = b.variable("counter");
        b.at("W.java:5");
        b.acquire(t1, l);
        b.at("W.java:6");
        b.write(t1, x);
        b.at("W.java:7");
        b.release(t1, l);
        b.at("W.java:5");
        b.acquire(t2, l);
        b.at("W.java:6");
        b.write(t2, x);
        b.at("W.java:7");
        b.release(t2, l);
        let original = b.finish();

        let text = write_std(&original);
        let reparsed = parse_std(&text).unwrap();
        assert_eq!(reparsed.len(), original.len());
        for (a, b) in original.events().iter().zip(reparsed.events()) {
            assert_eq!(a.kind(), b.kind());
            assert_eq!(a.thread(), b.thread());
        }
        assert_eq!(thread_of(&reparsed, 3), ThreadId::new(1));
    }

    #[test]
    fn roundtrip_csv() {
        let trace = parse_std(SAMPLE).unwrap();
        let csv = write_csv(&trace);
        assert!(csv.starts_with("thread,op,location\n"));
        let reparsed = parse_csv(&csv).unwrap();
        assert_eq!(reparsed.len(), trace.len());
    }
}
