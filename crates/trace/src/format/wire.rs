//! Shared binary-encoding primitives for every wire codec in the workspace.
//!
//! Two hand-rolled codecs live in this repository: the `.rwf` trace format
//! ([`binary`](super::binary), magic `"RWF\0"`) and the engine's `Outcome`
//! result codec (magic `"RWO\0"`, `rapid_engine::outcome::wire`), plus the
//! coordinator/worker protocol frames built on top of the latter.  All of
//! them share one house style — little-endian fixed-width integers,
//! `u32`-length-prefixed byte strings, lossy UTF-8 on decode — and this
//! module is that style's single implementation, extracted from the `.rwf`
//! reader so the codecs cannot drift apart: a change to how a length prefix
//! or a string is read changes every codec at once.
//!
//! The reading side is [`Cursor`], a bounds-checked little-endian reader
//! over a byte slice whose only error is [`Truncated`] (each codec maps it
//! into its own typed error, with whatever position context it tracks).
//! The writing side is the `put_*` free functions over a `Vec<u8>`.
//!
//! No varints: every integer on every wire is fixed-width LE, matching the
//! normative layout of `docs/FORMAT.md` §3 (and keeping frames seekable).

/// The single decode error of the shared primitives: the input ended before
/// the structure it declared.  Codecs map this into their own error types
/// ([`ParseErrorKind::Truncated`](super::ParseErrorKind::Truncated) for
/// `.rwf`, `WireErrorKind::Truncated` for the outcome codec).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Truncated;

impl std::fmt::Display for Truncated {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("input ends before the structure its header declares")
    }
}

impl std::error::Error for Truncated {}

/// A bounds-checked little-endian reader over a byte slice.
#[derive(Debug)]
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Starts a cursor at the beginning of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Cursor { data, pos: 0 }
    }

    /// Current byte offset from the start of the input.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when every input byte has been consumed (how codecs detect
    /// trailing garbage).
    pub fn at_end(&self) -> bool {
        self.pos == self.data.len()
    }

    /// Takes the next `len` raw bytes.
    ///
    /// # Errors
    ///
    /// [`Truncated`] when fewer than `len` bytes remain.
    pub fn take(&mut self, len: usize) -> Result<&'a [u8], Truncated> {
        let end = self.pos.checked_add(len).ok_or(Truncated)?;
        let slice = self.data.get(self.pos..end).ok_or(Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8, Truncated> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`Truncated`] when fewer than 2 bytes remain.
    pub fn u16(&mut self) -> Result<u16, Truncated> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("took 2 bytes")))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`Truncated`] when fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, Truncated> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("took 4 bytes")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`Truncated`] when fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, Truncated> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("took 8 bytes")))
    }

    /// Reads an `f64` stored as its IEEE-754 bits, little-endian.
    ///
    /// # Errors
    ///
    /// [`Truncated`] when fewer than 8 bytes remain.
    pub fn f64(&mut self) -> Result<f64, Truncated> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u32`-length-prefixed byte string, replacing invalid UTF-8
    /// with U+FFFD (names never abort a decode, per `docs/FORMAT.md` §1.4).
    ///
    /// # Errors
    ///
    /// [`Truncated`] when the prefix or the bytes run past the input.
    pub fn str(&mut self) -> Result<String, Truncated> {
        let len = self.u32()? as usize;
        Ok(String::from_utf8_lossy(self.take(len)?).into_owned())
    }

    /// Checks that at least `count * width` bytes could still follow — the
    /// hostile-header guard every codec applies before `reserve`-ing for a
    /// declared element count (each element needs at least `width` bytes, so
    /// a count larger than this bound cannot be honest).
    ///
    /// # Errors
    ///
    /// [`Truncated`] when the declared count cannot possibly fit.
    pub fn check_count(&self, count: u32, width: usize) -> Result<(), Truncated> {
        match (count as usize).checked_mul(width) {
            Some(need) if need <= self.remaining() => Ok(()),
            _ => Err(Truncated),
        }
    }
}

/// Appends one byte.
pub fn put_u8(out: &mut Vec<u8>, value: u8) {
    out.push(value);
}

/// Appends a little-endian `u16`.
pub fn put_u16(out: &mut Vec<u8>, value: u16) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 bits, little-endian.
pub fn put_f64(out: &mut Vec<u8>, value: f64) {
    put_u64(out, value.to_bits());
}

/// Appends a `u32`-length-prefixed byte string.
pub fn put_str(out: &mut Vec<u8>, value: &str) {
    put_u32(out, value.len() as u32);
    out.extend_from_slice(value.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut out = Vec::new();
        put_u8(&mut out, 7);
        put_u16(&mut out, 0xBEEF);
        put_u32(&mut out, 0xDEAD_BEEF);
        put_u64(&mut out, u64::MAX - 1);
        put_f64(&mut out, -0.125);
        put_str(&mut out, "Account.java:41");
        let mut cursor = Cursor::new(&out);
        assert_eq!(cursor.u8().unwrap(), 7);
        assert_eq!(cursor.u16().unwrap(), 0xBEEF);
        assert_eq!(cursor.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(cursor.u64().unwrap(), u64::MAX - 1);
        assert_eq!(cursor.f64().unwrap(), -0.125);
        assert_eq!(cursor.str().unwrap(), "Account.java:41");
        assert!(cursor.at_end());
        assert_eq!(cursor.pos(), out.len());
    }

    #[test]
    fn every_prefix_is_truncated() {
        let mut out = Vec::new();
        put_u32(&mut out, 3);
        put_str(&mut out, "xy");
        for len in 0..out.len() {
            let mut cursor = Cursor::new(&out[..len]);
            let result = cursor.u32().and_then(|_| cursor.str());
            assert!(result.is_err(), "prefix of {len} bytes must not decode");
        }
    }

    #[test]
    fn lossy_strings_replace_invalid_utf8() {
        let mut out = Vec::new();
        put_u32(&mut out, 3);
        out.extend_from_slice(&[b'a', 0xFF, b'b']);
        let mut cursor = Cursor::new(&out);
        assert_eq!(cursor.str().unwrap(), "a\u{FFFD}b");
    }

    #[test]
    fn check_count_guards_hostile_declarations() {
        let bytes = [0u8; 16];
        let cursor = Cursor::new(&bytes);
        assert!(cursor.check_count(4, 4).is_ok());
        assert!(cursor.check_count(5, 4).is_err());
        assert!(cursor.check_count(u32::MAX, usize::MAX / 2).is_err(), "overflow is truncation");
    }

    #[test]
    fn take_past_the_end_does_not_advance() {
        let bytes = [1u8, 2];
        let mut cursor = Cursor::new(&bytes);
        assert!(cursor.take(3).is_err());
        assert_eq!(cursor.remaining(), 2, "a failed take must not consume input");
        assert_eq!(cursor.take(2).unwrap(), &[1, 2]);
    }
}
