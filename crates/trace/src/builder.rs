//! Incremental construction of traces with name interning.

use std::collections::HashMap;

use rapid_vc::ThreadId;

use crate::event::{Event, EventId, EventKind};
use crate::ids::{Location, LockId, VarId};
use crate::trace::Trace;

/// Builds a [`Trace`] event by event, interning thread/lock/variable names.
///
/// The builder is non-consuming: every appender returns the [`EventId`] of
/// the event just added so call sites (tests, generators) can refer back to
/// specific events.
///
/// # Examples
///
/// ```
/// use rapid_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new();
/// let t1 = b.thread("t1");
/// let l = b.lock("l");
/// let x = b.variable("x");
/// let acq = b.acquire(t1, l);
/// let write = b.write(t1, x);
/// b.release(t1, l);
/// let trace = b.finish();
/// assert_eq!(acq.index(), 0);
/// assert_eq!(trace.event(write).kind().variable(), Some(x));
/// ```
#[derive(Debug, Default, Clone)]
pub struct TraceBuilder {
    events: Vec<Event>,
    threads: Interner,
    locks: Interner,
    variables: Interner,
    locations: Interner,
    next_location: Option<Location>,
}

/// String-to-dense-id interner shared by [`TraceBuilder`] and the streaming
/// trace readers in [`format`](crate::format).
#[derive(Debug, Default, Clone)]
pub(crate) struct Interner {
    names: Vec<String>,
    by_name: HashMap<String, u32>,
}

impl Interner {
    pub(crate) fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Interns a name given as raw bytes (the zero-copy readers' entry
    /// point).  Valid UTF-8 interns without copying first; invalid bytes are
    /// replaced (U+FFFD) rather than rejected, so a stray byte in one name
    /// cannot abort ingestion of a multi-gigabyte trace.
    pub(crate) fn intern_bytes(&mut self, name: &[u8]) -> u32 {
        match std::str::from_utf8(name) {
            Ok(name) => self.intern(name),
            Err(_) => self.intern(&String::from_utf8_lossy(name)),
        }
    }

    /// Rebuilds an interner from a complete name list (ids are the list
    /// positions) — used by the binary reader's string tables.
    pub(crate) fn from_names(names: Vec<String>) -> Interner {
        let by_name =
            names.iter().enumerate().map(|(id, name)| (name.clone(), id as u32)).collect();
        Interner { names, by_name }
    }

    pub(crate) fn len(&self) -> usize {
        self.names.len()
    }

    pub(crate) fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    pub(crate) fn into_names(self) -> Vec<String> {
        self.names
    }
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TraceBuilder::default()
    }

    /// Interns a thread name, returning its dense id.
    pub fn thread(&mut self, name: &str) -> ThreadId {
        ThreadId::new(self.threads.intern(name))
    }

    /// Interns a lock name, returning its dense id.
    pub fn lock(&mut self, name: &str) -> LockId {
        LockId::new(self.locks.intern(name))
    }

    /// Interns a variable name, returning its dense id.
    pub fn variable(&mut self, name: &str) -> VarId {
        VarId::new(self.variables.intern(name))
    }

    /// Interns a program-location name, returning its dense id.
    pub fn location(&mut self, name: &str) -> Location {
        Location::new(self.locations.intern(name))
    }

    /// Interns `count` threads named `t0..t{count-1}` and returns their ids.
    pub fn threads(&mut self, count: usize) -> Vec<ThreadId> {
        (0..count).map(|i| self.thread(&format!("t{i}"))).collect()
    }

    /// Interns `count` locks named `l0..l{count-1}` and returns their ids.
    pub fn locks(&mut self, count: usize) -> Vec<LockId> {
        (0..count).map(|i| self.lock(&format!("l{i}"))).collect()
    }

    /// Interns `count` variables named `x0..x{count-1}` and returns their ids.
    pub fn variables(&mut self, count: usize) -> Vec<VarId> {
        (0..count).map(|i| self.variable(&format!("x{i}"))).collect()
    }

    /// Sets the program location attached to the *next* appended event.
    ///
    /// If never called, events default to a location derived from their
    /// trace index (`line{N}`), so that every event has a distinct location
    /// and race *pairs of locations* are meaningful even for generated
    /// traces.
    pub fn at(&mut self, location: &str) -> &mut Self {
        let loc = self.location(location);
        self.next_location = Some(loc);
        self
    }

    /// Number of events appended so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns true when no event has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn push(&mut self, thread: ThreadId, kind: EventKind) -> EventId {
        let id = EventId::new(self.events.len() as u32);
        let location = match self.next_location.take() {
            Some(location) => location,
            None => {
                let name = format!("line{}", self.events.len() + 1);
                self.location(&name)
            }
        };
        self.events.push(Event::new(id, thread, kind, location));
        id
    }

    /// Appends `acq(lock)` by `thread`.
    pub fn acquire(&mut self, thread: ThreadId, lock: LockId) -> EventId {
        self.push(thread, EventKind::Acquire(lock))
    }

    /// Appends `rel(lock)` by `thread`.
    pub fn release(&mut self, thread: ThreadId, lock: LockId) -> EventId {
        self.push(thread, EventKind::Release(lock))
    }

    /// Appends `r(var)` by `thread`.
    pub fn read(&mut self, thread: ThreadId, var: VarId) -> EventId {
        self.push(thread, EventKind::Read(var))
    }

    /// Appends `w(var)` by `thread`.
    pub fn write(&mut self, thread: ThreadId, var: VarId) -> EventId {
        self.push(thread, EventKind::Write(var))
    }

    /// Appends `fork(child)` by `parent`.
    pub fn fork(&mut self, parent: ThreadId, child: ThreadId) -> EventId {
        self.push(parent, EventKind::Fork(child))
    }

    /// Appends `join(child)` by `parent`.
    pub fn join(&mut self, parent: ThreadId, child: ThreadId) -> EventId {
        self.push(parent, EventKind::Join(child))
    }

    /// Appends a whole critical section `acq(lock) … rel(lock)` around the
    /// events produced by `body`, returning the ids of the acquire and
    /// release events.
    pub fn critical_section<F>(
        &mut self,
        thread: ThreadId,
        lock: LockId,
        body: F,
    ) -> (EventId, EventId)
    where
        F: FnOnce(&mut Self),
    {
        let acquire = self.acquire(thread, lock);
        body(self);
        let release = self.release(thread, lock);
        (acquire, release)
    }

    /// Appends the paper's `acrl(lock)` shorthand: `acq(lock) rel(lock)`.
    pub fn acrl(&mut self, thread: ThreadId, lock: LockId) -> (EventId, EventId) {
        let acquire = self.acquire(thread, lock);
        let release = self.release(thread, lock);
        (acquire, release)
    }

    /// Appends the paper's `sync(lock)` shorthand used in Figures 3–5:
    /// `acq(lock) r(lockVar) w(lockVar) rel(lock)` where `lockVar` is the
    /// variable uniquely associated with the lock.
    pub fn sync(&mut self, thread: ThreadId, lock: LockId) -> (EventId, EventId) {
        let var_name = format!("__syncvar_{}", lock.raw());
        let var = self.variable(&var_name);
        let acquire = self.acquire(thread, lock);
        self.read(thread, var);
        self.write(thread, var);
        let release = self.release(thread, lock);
        (acquire, release)
    }

    /// Finalizes the builder into an immutable [`Trace`].
    pub fn finish(self) -> Trace {
        Trace::from_parts(
            self.events,
            self.threads.names,
            self.locks.names,
            self.variables.names,
            self.locations.names,
        )
    }

    /// Number of interned threads so far.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Number of interned locks so far.
    pub fn num_locks(&self) -> usize {
        self.locks.len()
    }

    /// Number of interned variables so far.
    pub fn num_variables(&self) -> usize {
        self.variables.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let again = b.thread("t1");
        let t2 = b.thread("t2");
        assert_eq!(t1, again);
        assert_ne!(t1, t2);
        assert_eq!(b.num_threads(), 2);
    }

    #[test]
    fn bulk_interning_helpers() {
        let mut b = TraceBuilder::new();
        let threads = b.threads(3);
        let locks = b.locks(2);
        let vars = b.variables(4);
        assert_eq!(threads.len(), 3);
        assert_eq!(locks.len(), 2);
        assert_eq!(vars.len(), 4);
        assert_eq!(b.num_threads(), 3);
        assert_eq!(b.num_locks(), 2);
        assert_eq!(b.num_variables(), 4);
        // Re-interning by the generated names returns the same ids.
        assert_eq!(b.thread("t1"), threads[1]);
    }

    #[test]
    fn event_ids_are_dense_and_ordered() {
        let mut b = TraceBuilder::new();
        let t = b.thread("t");
        let x = b.variable("x");
        let first = b.read(t, x);
        let second = b.write(t, x);
        assert_eq!(first.index(), 0);
        assert_eq!(second.index(), 1);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn default_locations_are_distinct() {
        let mut b = TraceBuilder::new();
        let t = b.thread("t");
        let x = b.variable("x");
        b.read(t, x);
        b.write(t, x);
        let trace = b.finish();
        assert_ne!(trace[0].location(), trace[1].location());
        assert_eq!(trace.location_name(trace[0].location()), Some("line1"));
    }

    #[test]
    fn explicit_location_applies_to_next_event_only() {
        let mut b = TraceBuilder::new();
        let t = b.thread("t");
        let x = b.variable("x");
        b.at("Foo.java:10");
        b.read(t, x);
        b.write(t, x);
        let trace = b.finish();
        assert_eq!(trace.location_name(trace[0].location()), Some("Foo.java:10"));
        assert_eq!(trace.location_name(trace[1].location()), Some("line2"));
    }

    #[test]
    fn critical_section_wraps_body() {
        let mut b = TraceBuilder::new();
        let t = b.thread("t");
        let l = b.lock("l");
        let x = b.variable("x");
        let (acq, rel) = b.critical_section(t, l, |b| {
            b.write(t, x);
        });
        let trace = b.finish();
        assert_eq!(trace.event(acq).kind(), EventKind::Acquire(l));
        assert_eq!(trace.event(rel).kind(), EventKind::Release(l));
        assert_eq!(trace.len(), 3);
        assert!(trace[1].kind().is_write());
    }

    #[test]
    fn sync_emits_four_events_on_dedicated_variable() {
        let mut b = TraceBuilder::new();
        let t = b.thread("t");
        let sync_lock = b.lock("x_sync");
        b.sync(t, sync_lock);
        let trace = b.finish();
        assert_eq!(trace.len(), 4);
        assert!(trace[0].kind().is_acquire());
        assert!(trace[1].kind().is_read());
        assert!(trace[2].kind().is_write());
        assert!(trace[3].kind().is_release());
        assert_eq!(trace[1].kind().variable(), trace[2].kind().variable());
    }

    #[test]
    fn acrl_emits_acquire_release_pair() {
        let mut b = TraceBuilder::new();
        let t = b.thread("t");
        let l = b.lock("y");
        let (acq, rel) = b.acrl(t, l);
        assert_eq!(acq.index() + 1, rel.index());
        let trace = b.finish();
        assert!(trace.validate().is_ok());
    }

    #[test]
    fn fork_join_events() {
        let mut b = TraceBuilder::new();
        let parent = b.thread("main");
        let child = b.thread("worker");
        let x = b.variable("x");
        b.fork(parent, child);
        b.write(child, x);
        b.join(parent, child);
        let trace = b.finish();
        assert_eq!(trace[0].kind(), EventKind::Fork(child));
        assert_eq!(trace[2].kind(), EventKind::Join(child));
        assert!(trace.validate().is_ok());
    }
}
