//! Race reports: pairs of conflicting events unordered by a partial order.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::event::EventId;
use crate::ids::{Location, VarId};
use crate::trace::Trace;

/// Which analysis flagged a race.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RaceKind {
    /// Unordered by happens-before.
    Hb,
    /// Unordered by weak-causally-precedes (the paper's contribution).
    Wcp,
    /// Unordered by causally-precedes.
    Cp,
    /// Witnessed by the windowed maximal-causal-model search.
    Mcm,
}

impl fmt::Display for RaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RaceKind::Hb => "HB",
            RaceKind::Wcp => "WCP",
            RaceKind::Cp => "CP",
            RaceKind::Mcm => "MCM",
        };
        f.write_str(name)
    }
}

/// A single race: two conflicting events unordered by the analysis relation.
///
/// `first` is the earlier event in trace order, `second` the later one (the
/// event at which the streaming detectors raise the warning, §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Race {
    /// The earlier conflicting event.
    pub first: EventId,
    /// The later conflicting event (where the detector flagged the race).
    pub second: EventId,
    /// The variable both events access.
    pub variable: VarId,
    /// Program location of the earlier event.
    pub first_location: Location,
    /// Program location of the later event.
    pub second_location: Location,
    /// Which analysis reported the race.
    pub kind: RaceKind,
}

impl Race {
    /// The unordered pair of program locations, normalized so that the
    /// smaller location comes first.  The paper counts *distinct race pairs*
    /// as distinct values of this pair (§4).
    pub fn location_pair(&self) -> (Location, Location) {
        if self.first_location <= self.second_location {
            (self.first_location, self.second_location)
        } else {
            (self.second_location, self.first_location)
        }
    }

    /// The race *distance*: the number of events separating the two accesses
    /// in the original trace (§4.3).
    pub fn distance(&self) -> usize {
        self.second.index().saturating_sub(self.first.index())
    }
}

impl fmt::Display for Race {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} race on {} between {} and {}",
            self.kind, self.variable, self.first, self.second
        )
    }
}

/// The collection of races reported by one analysis run over one trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RaceReport {
    races: Vec<Race>,
}

impl RaceReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        RaceReport::default()
    }

    /// Records a race.
    pub fn push(&mut self, race: Race) {
        self.races.push(race);
    }

    /// All recorded races, in detection order.
    pub fn races(&self) -> &[Race] {
        &self.races
    }

    /// Total number of recorded race events (not deduplicated).
    pub fn len(&self) -> usize {
        self.races.len()
    }

    /// Returns true when no race was recorded.
    pub fn is_empty(&self) -> bool {
        self.races.is_empty()
    }

    /// The distinct unordered pairs of program locations in race — the
    /// number the paper's Table 1 reports per benchmark (columns 6–10).
    pub fn distinct_location_pairs(&self) -> BTreeSet<(Location, Location)> {
        self.races.iter().map(Race::location_pair).collect()
    }

    /// Number of distinct location pairs (the paper's "#Races").
    pub fn distinct_pairs(&self) -> usize {
        self.distinct_location_pairs().len()
    }

    /// Maximum race distance over all recorded races (§4.3 reports races
    /// millions of events apart).
    pub fn max_distance(&self) -> usize {
        self.races.iter().map(Race::distance).max().unwrap_or(0)
    }

    /// Minimum distance per distinct location pair: the paper defines the
    /// distance of a race between program locations as the *minimum*
    /// separation among event pairs exhibiting it.
    pub fn pair_distances(&self) -> Vec<((Location, Location), usize)> {
        let mut distances: Vec<((Location, Location), usize)> = Vec::new();
        for pair in self.distinct_location_pairs() {
            let distance = self
                .races
                .iter()
                .filter(|race| race.location_pair() == pair)
                .map(Race::distance)
                .min()
                .unwrap_or(0);
            distances.push((pair, distance));
        }
        distances
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: RaceReport) {
        self.races.extend(other.races);
    }

    /// Renders a human-readable summary using the trace's interned names.
    pub fn summary(&self, trace: &Trace) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} race event(s), {} distinct location pair(s)\n",
            self.len(),
            self.distinct_pairs()
        ));
        for race in &self.races {
            let variable = trace
                .variable_name(race.variable)
                .map(str::to_owned)
                .unwrap_or_else(|| race.variable.to_string());
            let loc1 = trace
                .location_name(race.first_location)
                .map(str::to_owned)
                .unwrap_or_else(|| race.first_location.to_string());
            let loc2 = trace
                .location_name(race.second_location)
                .map(str::to_owned)
                .unwrap_or_else(|| race.second_location.to_string());
            out.push_str(&format!(
                "  [{}] {} vs {} on {} ({} .. {}, distance {})\n",
                race.kind,
                loc1,
                loc2,
                variable,
                race.first,
                race.second,
                race.distance()
            ));
        }
        out
    }
}

/// A drain cursor over a growing [`RaceReport`]: hands out each recorded
/// race exactly once, in detection order.
///
/// Every streaming detector core appends races to its report as events are
/// pushed, and its `on_event` must return only the races flagged *at that
/// event*.  The cursor encapsulates that pattern (previously hand-rolled as
/// an `emitted` counter in each core): call [`RaceDrain::fresh`] after
/// updating the report and it returns the not-yet-emitted suffix.
///
/// # Examples
///
/// ```
/// use rapid_trace::{RaceDrain, RaceReport};
///
/// let mut report = RaceReport::new();
/// let mut drain = RaceDrain::new();
/// assert!(drain.fresh(&report).is_empty());
/// # let some_race = rapid_trace::Race {
/// #     first: rapid_trace::EventId::new(0),
/// #     second: rapid_trace::EventId::new(1),
/// #     variable: rapid_trace::VarId::new(0),
/// #     first_location: rapid_trace::Location::new(0),
/// #     second_location: rapid_trace::Location::new(1),
/// #     kind: rapid_trace::RaceKind::Hb,
/// # };
/// report.push(some_race);
/// assert_eq!(drain.fresh(&report).len(), 1);
/// assert!(drain.fresh(&report).is_empty(), "each race is emitted once");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct RaceDrain {
    emitted: usize,
}

impl RaceDrain {
    /// Creates a cursor at the start of a report.
    pub fn new() -> Self {
        RaceDrain::default()
    }

    /// Returns the races recorded in `report` since the previous call,
    /// advancing the cursor past them.
    pub fn fresh(&mut self, report: &RaceReport) -> Vec<Race> {
        let fresh = report.races()[self.emitted..].to_vec();
        self.emitted = report.len();
        fresh
    }

    /// Number of races emitted so far.
    pub fn emitted(&self) -> usize {
        self.emitted
    }
}

impl FromIterator<Race> for RaceReport {
    fn from_iter<I: IntoIterator<Item = Race>>(iter: I) -> Self {
        RaceReport { races: iter.into_iter().collect() }
    }
}

impl Extend<Race> for RaceReport {
    fn extend<I: IntoIterator<Item = Race>>(&mut self, iter: I) {
        self.races.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn race(first: u32, second: u32, loc1: u32, loc2: u32) -> Race {
        Race {
            first: EventId::new(first),
            second: EventId::new(second),
            variable: VarId::new(0),
            first_location: Location::new(loc1),
            second_location: Location::new(loc2),
            kind: RaceKind::Wcp,
        }
    }

    #[test]
    fn location_pair_is_normalized() {
        let a = race(0, 5, 9, 2);
        let b = race(1, 6, 2, 9);
        assert_eq!(a.location_pair(), b.location_pair());
    }

    #[test]
    fn distance_counts_event_separation() {
        assert_eq!(race(3, 10, 0, 1).distance(), 7);
        assert_eq!(race(3, 3, 0, 1).distance(), 0);
    }

    #[test]
    fn distinct_pairs_deduplicates() {
        let mut report = RaceReport::new();
        report.push(race(0, 5, 1, 2));
        report.push(race(7, 9, 2, 1)); // same pair, swapped
        report.push(race(3, 4, 1, 3));
        assert_eq!(report.len(), 3);
        assert_eq!(report.distinct_pairs(), 2);
        assert!(!report.is_empty());
    }

    #[test]
    fn max_distance_and_pair_distances() {
        let mut report = RaceReport::new();
        report.push(race(0, 100, 1, 2));
        report.push(race(50, 55, 1, 2));
        report.push(race(10, 20, 3, 4));
        assert_eq!(report.max_distance(), 100);
        let distances = report.pair_distances();
        assert_eq!(distances.len(), 2);
        let short = distances
            .iter()
            .find(|(pair, _)| *pair == (Location::new(1), Location::new(2)))
            .unwrap();
        assert_eq!(short.1, 5, "minimum distance per pair");
    }

    #[test]
    fn merge_and_collect() {
        let mut a: RaceReport = vec![race(0, 1, 0, 1)].into_iter().collect();
        let b: RaceReport = vec![race(2, 3, 2, 3)].into_iter().collect();
        a.merge(b);
        assert_eq!(a.len(), 2);
        let mut c = RaceReport::new();
        c.extend(vec![race(4, 5, 4, 5)]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn empty_report() {
        let report = RaceReport::new();
        assert!(report.is_empty());
        assert_eq!(report.max_distance(), 0);
        assert_eq!(report.distinct_pairs(), 0);
    }

    #[test]
    fn kind_display() {
        assert_eq!(RaceKind::Hb.to_string(), "HB");
        assert_eq!(RaceKind::Wcp.to_string(), "WCP");
        assert_eq!(RaceKind::Cp.to_string(), "CP");
        assert_eq!(RaceKind::Mcm.to_string(), "MCM");
    }
}
