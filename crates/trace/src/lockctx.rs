//! Online tracking of held locks and per-critical-section access sets.
//!
//! Algorithm 1 parameterizes its `read`/`write` procedures by the set `L` of
//! locks whose critical sections enclose the access, and its `release`
//! procedure by the sets `R`/`W` of variables read/written inside the
//! critical section being closed.  [`LockContext`] derives those parameters
//! online while a detector streams over the trace, so traces do not need to
//! carry them explicitly.

use rapid_vc::ThreadId;

use crate::event::{Event, EventKind};
use crate::ids::{LockId, VarId};

/// Per-thread stack frame: one open critical section.  The access sets are
/// kept as *sorted* vectors — sections touch few distinct variables, so a
/// binary search beats hashing on the per-access hot path and the sets come
/// out already sorted when the section closes.
#[derive(Debug, Clone)]
struct Frame {
    lock: LockId,
    reads: Vec<VarId>,
    writes: Vec<VarId>,
}

/// Inserts `var` into a sorted set-vector if absent.
fn insert_sorted(set: &mut Vec<VarId>, var: VarId) {
    if let Err(position) = set.binary_search(&var) {
        set.insert(position, var);
    }
}

/// The access sets of a just-closed critical section, handed to the caller by
/// [`LockContext::on_event`] when it processes a release.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClosedSection {
    /// The lock whose critical section closed.
    pub lock: LockId,
    /// Variables read inside the critical section (the paper's `R`).
    pub reads: Vec<VarId>,
    /// Variables written inside the critical section (the paper's `W`).
    pub writes: Vec<VarId>,
}

/// Streaming tracker of lock nesting per thread.
///
/// Feed every event of the trace, in order, to [`LockContext::on_event`];
/// between calls, [`LockContext::held`] answers which locks a thread holds
/// (innermost last), which is the `L` parameter for read/write events.
///
/// # Examples
///
/// ```
/// use rapid_trace::lockctx::LockContext;
/// use rapid_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new();
/// let t = b.thread("t");
/// let l = b.lock("l");
/// let x = b.variable("x");
/// b.acquire(t, l);
/// b.write(t, x);
/// b.release(t, l);
/// let trace = b.finish();
///
/// let mut ctx = LockContext::new(trace.num_threads());
/// ctx.on_event(&trace[0]);
/// assert_eq!(ctx.held(t), vec![l]);
/// ctx.on_event(&trace[1]);
/// let closed = ctx.on_event(&trace[2]).expect("release closes a section");
/// assert_eq!(closed.writes, vec![x]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LockContext {
    stacks: Vec<Vec<Frame>>,
}

impl LockContext {
    /// Creates a context able to track `threads` threads (it grows on demand).
    pub fn new(threads: usize) -> Self {
        LockContext { stacks: vec![Vec::new(); threads] }
    }

    fn stack_mut(&mut self, thread: ThreadId) -> &mut Vec<Frame> {
        let index = thread.index();
        if index >= self.stacks.len() {
            self.stacks.resize_with(index + 1, Vec::new);
        }
        &mut self.stacks[index]
    }

    /// Locks currently held by `thread`, outermost first.
    pub fn held(&self, thread: ThreadId) -> Vec<LockId> {
        self.held_iter(thread).collect()
    }

    /// Iterates the locks currently held by `thread`, outermost first,
    /// without allocating (the hot-path form of [`LockContext::held`]).
    pub fn held_iter(&self, thread: ThreadId) -> impl Iterator<Item = LockId> + '_ {
        self.stacks
            .get(thread.index())
            .map(|stack| stack.as_slice())
            .unwrap_or(&[])
            .iter()
            .map(|frame| frame.lock)
    }

    /// Returns true when `thread` holds `lock`.
    pub fn holds(&self, thread: ThreadId, lock: LockId) -> bool {
        self.stacks
            .get(thread.index())
            .map(|stack| stack.iter().any(|frame| frame.lock == lock))
            .unwrap_or(false)
    }

    /// Current lock-nesting depth of `thread`.
    pub fn depth(&self, thread: ThreadId) -> usize {
        self.stacks.get(thread.index()).map(Vec::len).unwrap_or(0)
    }

    /// Processes one event.  For a release event, returns the closed critical
    /// section's access sets; for all other events returns `None`.
    ///
    /// The trace is assumed to be well formed (see
    /// [`Trace::validate`](crate::Trace::validate)); on malformed traces the
    /// context degrades gracefully (releases without acquires are ignored).
    pub fn on_event(&mut self, event: &Event) -> Option<ClosedSection> {
        let thread = event.thread();
        match event.kind() {
            EventKind::Acquire(lock) => {
                self.stack_mut(thread).push(Frame { lock, reads: Vec::new(), writes: Vec::new() });
                None
            }
            EventKind::Release(lock) => {
                let stack = self.stack_mut(thread);
                match stack.last() {
                    Some(frame) if frame.lock == lock => {
                        let frame = stack.pop().expect("non-empty stack");
                        // Accesses inside an inner critical section are also
                        // inside the enclosing ones; propagate them outward.
                        if let Some(outer) = stack.last_mut() {
                            for &var in &frame.reads {
                                insert_sorted(&mut outer.reads, var);
                            }
                            for &var in &frame.writes {
                                insert_sorted(&mut outer.writes, var);
                            }
                        }
                        // The frame's sorted buffers move straight into the
                        // closed section — no copy, no re-sort.
                        Some(ClosedSection { lock, reads: frame.reads, writes: frame.writes })
                    }
                    _ => None,
                }
            }
            EventKind::Read(var) => {
                for frame in self.stack_mut(thread).iter_mut() {
                    insert_sorted(&mut frame.reads, var);
                }
                None
            }
            EventKind::Write(var) => {
                for frame in self.stack_mut(thread).iter_mut() {
                    insert_sorted(&mut frame.writes, var);
                }
                None
            }
            EventKind::Fork(_) | EventKind::Join(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceBuilder;

    #[test]
    fn tracks_nesting_depth_and_held_locks() {
        let mut b = TraceBuilder::new();
        let t = b.thread("t");
        let l = b.lock("l");
        let m = b.lock("m");
        let x = b.variable("x");
        b.acquire(t, l);
        b.acquire(t, m);
        b.read(t, x);
        b.release(t, m);
        b.release(t, l);
        let trace = b.finish();

        let mut ctx = LockContext::new(1);
        ctx.on_event(&trace[0]);
        ctx.on_event(&trace[1]);
        assert_eq!(ctx.held(t), vec![l, m]);
        assert_eq!(ctx.held_iter(t).collect::<Vec<_>>(), vec![l, m]);
        assert_eq!(ctx.depth(t), 2);
        assert!(ctx.holds(t, l) && ctx.holds(t, m));
        ctx.on_event(&trace[2]);
        ctx.on_event(&trace[3]);
        assert_eq!(ctx.held(t), vec![l]);
        ctx.on_event(&trace[4]);
        assert_eq!(ctx.depth(t), 0);
    }

    #[test]
    fn release_reports_access_sets() {
        let mut b = TraceBuilder::new();
        let t = b.thread("t");
        let l = b.lock("l");
        let x = b.variable("x");
        let y = b.variable("y");
        b.acquire(t, l);
        b.read(t, x);
        b.write(t, y);
        b.write(t, y);
        b.release(t, l);
        let trace = b.finish();

        let mut ctx = LockContext::new(1);
        let mut closed = None;
        for event in trace.events() {
            if let Some(section) = ctx.on_event(event) {
                closed = Some(section);
            }
        }
        let closed = closed.expect("release seen");
        assert_eq!(closed.lock, l);
        assert_eq!(closed.reads, vec![x]);
        assert_eq!(closed.writes, vec![y]);
    }

    #[test]
    fn inner_accesses_propagate_to_outer_sections() {
        let mut b = TraceBuilder::new();
        let t = b.thread("t");
        let l = b.lock("outer");
        let m = b.lock("inner");
        let x = b.variable("x");
        b.acquire(t, l);
        b.acquire(t, m);
        b.write(t, x);
        b.release(t, m);
        b.release(t, l);
        let trace = b.finish();

        let mut ctx = LockContext::new(1);
        let mut sections = Vec::new();
        for event in trace.events() {
            if let Some(section) = ctx.on_event(event) {
                sections.push(section);
            }
        }
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0].lock, m);
        assert_eq!(sections[0].writes, vec![x]);
        assert_eq!(sections[1].lock, l);
        assert_eq!(sections[1].writes, vec![x], "inner write visible in outer section");
    }

    #[test]
    fn accesses_outside_critical_sections_are_not_recorded() {
        let mut b = TraceBuilder::new();
        let t = b.thread("t");
        let l = b.lock("l");
        let x = b.variable("x");
        b.write(t, x);
        b.acquire(t, l);
        b.release(t, l);
        let trace = b.finish();

        let mut ctx = LockContext::new(1);
        let mut closed = None;
        for event in trace.events() {
            if let Some(section) = ctx.on_event(event) {
                closed = Some(section);
            }
        }
        let closed = closed.unwrap();
        assert!(closed.reads.is_empty());
        assert!(closed.writes.is_empty());
    }

    #[test]
    fn mismatched_release_is_ignored() {
        let mut b = TraceBuilder::new();
        let t = b.thread("t");
        let l = b.lock("l");
        b.release(t, l);
        let trace = b.finish();
        let mut ctx = LockContext::new(1);
        assert_eq!(ctx.on_event(&trace[0]), None);
    }

    #[test]
    fn separate_threads_have_separate_stacks() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let l = b.lock("l");
        let m = b.lock("m");
        b.acquire(t1, l);
        b.acquire(t2, m);
        let trace = b.finish();
        let mut ctx = LockContext::new(2);
        ctx.on_event(&trace[0]);
        ctx.on_event(&trace[1]);
        assert_eq!(ctx.held(t1), vec![l]);
        assert_eq!(ctx.held(t2), vec![m]);
        assert!(!ctx.holds(t1, m));
    }
}
