//! Trace model, parsing, validation and reordering checks for `rapid-rs`.
//!
//! This crate is the substrate every detector in the workspace builds on.  It
//! reproduces the execution-trace model of "Dynamic Race Prediction in Linear
//! Time" (PLDI 2017, §2.1):
//!
//! * **Events** ([`Event`], [`EventKind`]): lock acquire/release, variable
//!   read/write, and thread fork/join, each tagged with the performing thread
//!   and a program location (the paper reports *race pairs* as pairs of
//!   program locations).
//! * **Traces** ([`Trace`], [`TraceBuilder`]): a sequence of events subject to
//!   *lock semantics* and *well-nestedness*; [`validate`](Trace::validate)
//!   checks both.
//! * **Lock structure** ([`lockctx::LockContext`], [`analysis::TraceIndex`]):
//!   critical sections, `match(a)`, held-lock sets and per-critical-section
//!   read/write sets — the `L`, `R`, `W` parameters of Algorithm 1.
//! * **Correct reorderings** ([`reorder`]): the paper's definition of a
//!   correct reordering, a checker for it, and a bounded search for reordering
//!   witnesses of predictable races/deadlocks (used to certify detector
//!   output in tests).
//! * **Formats** ([`format`]): a line-oriented "std" text format (modelled on
//!   the RAPID/RVPredict logging format) plus CSV, with both parser and
//!   writer; zero-copy ingestion over memory-mapped files
//!   ([`format::MmapReader`]); and the fixed-width binary wire format
//!   `.rwf` ([`format::BinReader`]).  All three encodings are specified
//!   normatively in `docs/FORMAT.md` at the repository root.
//!
//! # Examples
//!
//! Build the trace of Figure 1b of the paper and inspect it:
//!
//! ```
//! use rapid_trace::{EventKind, TraceBuilder};
//!
//! let mut b = TraceBuilder::new();
//! let (t1, t2) = (b.thread("t1"), b.thread("t2"));
//! let l = b.lock("l");
//! let (x, y) = (b.variable("x"), b.variable("y"));
//! b.write(t1, y);
//! b.acquire(t1, l);
//! b.read(t1, x);
//! b.release(t1, l);
//! b.acquire(t2, l);
//! b.read(t2, x);
//! b.release(t2, l);
//! b.read(t2, y);
//! let trace = b.finish();
//!
//! assert_eq!(trace.len(), 8);
//! assert!(trace.validate().is_ok());
//! assert!(matches!(trace[0].kind(), EventKind::Write(v) if v == y));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod builder;
pub mod event;
pub mod format;
pub mod ids;
pub mod lockctx;
pub mod names;
pub mod race;
pub mod reorder;
pub mod stats;
pub mod trace;
pub mod validate;

pub use builder::TraceBuilder;
pub use event::{Event, EventId, EventKind};
pub use ids::{Location, LockId, VarId};
pub use names::NameResolver;
pub use race::{Race, RaceDrain, RaceKind, RaceReport};
pub use rapid_vc::ThreadId;
pub use stats::TraceStats;
pub use trace::Trace;
pub use validate::{TraceError, ValidationErrorKind};
