//! Textual trace formats: the pipe-separated "std" format and CSV.
//!
//! The authors' RAPID tool consumes traces produced by RVPredict's logger in
//! a simple line-oriented format; we model that with the *std* format:
//!
//! ```text
//! # comments and blank lines are ignored
//! t1|acq(l)|Account.java:41
//! t1|r(balance)|Account.java:42
//! t1|w(balance)|Account.java:42
//! t1|rel(l)|Account.java:43
//! main|fork(t1)|Main.java:10
//! ```
//!
//! Every line is `<thread>|<op>(<target>)|<location>`; `<op>` is one of
//! `acq`, `rel`, `r`, `w`, `fork`, `join`; the location field is optional.
//! The CSV flavour is identical with commas: `thread,op,target,location`.

use std::error::Error;
use std::fmt;

use rapid_vc::ThreadId;

use crate::builder::TraceBuilder;
use crate::event::EventKind;
use crate::trace::Trace;

/// Why a trace file could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// The line does not have the required number of fields.
    MissingField,
    /// The operation mnemonic is not one of `acq`, `rel`, `r`, `w`, `fork`, `join`.
    UnknownOp(String),
    /// The operation field is not of the form `op(target)`.
    MalformedOp(String),
}

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseErrorKind::MissingField => {
                write!(f, "line {}: expected `thread|op(target)|location`", self.line)
            }
            ParseErrorKind::UnknownOp(op) => {
                write!(f, "line {}: unknown operation `{op}`", self.line)
            }
            ParseErrorKind::MalformedOp(op) => {
                write!(f, "line {}: malformed operation `{op}`, expected `op(target)`", self.line)
            }
        }
    }
}

impl Error for ParseError {}

fn parse_lines(input: &str, separator: char) -> Result<Trace, ParseError> {
    let mut builder = TraceBuilder::new();
    for (line_index, raw_line) in input.lines().enumerate() {
        let line_number = line_index + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Skip a CSV header line if present.
        if separator == ',' && line_index == 0 && line.to_lowercase().starts_with("thread,") {
            continue;
        }
        let mut fields = line.split(separator).map(str::trim);
        let thread = fields
            .next()
            .filter(|field| !field.is_empty())
            .ok_or(ParseError { line: line_number, kind: ParseErrorKind::MissingField })?;
        let op = fields
            .next()
            .filter(|field| !field.is_empty())
            .ok_or(ParseError { line: line_number, kind: ParseErrorKind::MissingField })?;
        let location = fields.next().filter(|field| !field.is_empty());

        let (mnemonic, target) = split_op(op).ok_or_else(|| ParseError {
            line: line_number,
            kind: ParseErrorKind::MalformedOp(op.to_owned()),
        })?;

        let thread_id = builder.thread(thread);
        if let Some(location) = location {
            builder.at(location);
        }
        match mnemonic {
            "acq" | "acquire" => {
                let lock = builder.lock(target);
                builder.acquire(thread_id, lock);
            }
            "rel" | "release" => {
                let lock = builder.lock(target);
                builder.release(thread_id, lock);
            }
            "r" | "read" => {
                let var = builder.variable(target);
                builder.read(thread_id, var);
            }
            "w" | "write" => {
                let var = builder.variable(target);
                builder.write(thread_id, var);
            }
            "fork" => {
                let child = builder.thread(target);
                builder.fork(thread_id, child);
            }
            "join" => {
                let child = builder.thread(target);
                builder.join(thread_id, child);
            }
            other => {
                return Err(ParseError {
                    line: line_number,
                    kind: ParseErrorKind::UnknownOp(other.to_owned()),
                })
            }
        }
    }
    Ok(builder.finish())
}

fn split_op(op: &str) -> Option<(&str, &str)> {
    let open = op.find('(')?;
    if !op.ends_with(')') {
        return None;
    }
    let mnemonic = &op[..open];
    let target = &op[open + 1..op.len() - 1];
    if mnemonic.is_empty() || target.is_empty() {
        return None;
    }
    Some((mnemonic, target))
}

/// Parses a trace in the std (pipe-separated) format.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line number.
pub fn parse_std(input: &str) -> Result<Trace, ParseError> {
    parse_lines(input, '|')
}

/// Parses a trace in CSV format (`thread,op,target,location`).
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line number.
pub fn parse_csv(input: &str) -> Result<Trace, ParseError> {
    parse_lines(input, ',')
}

fn event_line(trace: &Trace, event_index: usize, separator: char) -> String {
    let event = &trace.events()[event_index];
    let thread = trace
        .thread_name(event.thread())
        .map(str::to_owned)
        .unwrap_or_else(|| event.thread().to_string());
    let target = match event.kind() {
        EventKind::Acquire(lock) | EventKind::Release(lock) => {
            trace.lock_name(lock).map(str::to_owned).unwrap_or_else(|| lock.to_string())
        }
        EventKind::Read(var) | EventKind::Write(var) => {
            trace.variable_name(var).map(str::to_owned).unwrap_or_else(|| var.to_string())
        }
        EventKind::Fork(thread) | EventKind::Join(thread) => {
            trace.thread_name(thread).map(str::to_owned).unwrap_or_else(|| thread.to_string())
        }
    };
    let location = trace
        .location_name(event.location())
        .map(str::to_owned)
        .unwrap_or_else(|| event.location().to_string());
    format!("{thread}{separator}{op}({target}){separator}{location}", op = event.kind().mnemonic())
}

/// Serializes a trace to the std (pipe-separated) format.
pub fn write_std(trace: &Trace) -> String {
    let mut out = String::new();
    for index in 0..trace.len() {
        out.push_str(&event_line(trace, index, '|'));
        out.push('\n');
    }
    out
}

/// Serializes a trace to CSV (with a header line).
pub fn write_csv(trace: &Trace) -> String {
    let mut out = String::from("thread,op,location\n");
    for index in 0..trace.len() {
        out.push_str(&event_line(trace, index, ','));
        out.push('\n');
    }
    out
}

/// Convenience: returns the thread that performs the `index`-th event of a
/// parsed trace (used by round-trip tests).
pub fn thread_of(trace: &Trace, index: usize) -> ThreadId {
    trace.events()[index].thread()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{LockId, VarId};
    use crate::TraceBuilder;

    const SAMPLE: &str = "\
# a small trace
t1|acq(l)|A.java:1
t1|w(x)|A.java:2
t1|rel(l)|A.java:3

t2|acq(l)|B.java:7
t2|r(x)|B.java:8
t2|rel(l)|B.java:9
main|fork(t1)|Main.java:1
";

    #[test]
    fn parses_std_format() {
        let trace = parse_std(SAMPLE).unwrap();
        assert_eq!(trace.len(), 7);
        assert_eq!(trace.num_threads(), 3);
        assert_eq!(trace.num_locks(), 1);
        assert_eq!(trace.num_variables(), 1);
        assert_eq!(trace[0].kind(), EventKind::Acquire(LockId::new(0)));
        assert_eq!(trace[4].kind(), EventKind::Read(VarId::new(0)));
        assert!(trace[6].kind().is_thread_op());
        assert_eq!(trace.location_name(trace[1].location()), Some("A.java:2"));
    }

    #[test]
    fn parses_csv_with_header() {
        let csv = "thread,op,location\nt1,acq(l),A:1\nt1,w(x),A:2\nt1,rel(l),A:3\n";
        let trace = parse_csv(csv).unwrap();
        assert_eq!(trace.len(), 3);
        assert!(trace.validate().is_ok());
    }

    #[test]
    fn location_is_optional() {
        let trace = parse_std("t1|w(x)\nt1|r(x)").unwrap();
        assert_eq!(trace.len(), 2);
        // Default locations are still distinct.
        assert_ne!(trace[0].location(), trace[1].location());
    }

    #[test]
    fn unknown_op_is_an_error() {
        let err = parse_std("t1|lock(l)|A:1").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(matches!(err.kind, ParseErrorKind::UnknownOp(_)));
        assert!(err.to_string().contains("unknown operation"));
    }

    #[test]
    fn malformed_op_is_an_error() {
        let err = parse_std("t1|acq l|A:1").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::MalformedOp(_)));
        let err = parse_std("t1|acq()|A:1").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::MalformedOp(_)));
    }

    #[test]
    fn missing_field_is_an_error() {
        let err = parse_std("t1").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::MissingField);
        let err = parse_std("\n\nt1|").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn roundtrip_std() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("worker-1");
        let t2 = b.thread("worker-2");
        let l = b.lock("mutex");
        let x = b.variable("counter");
        b.at("W.java:5");
        b.acquire(t1, l);
        b.at("W.java:6");
        b.write(t1, x);
        b.at("W.java:7");
        b.release(t1, l);
        b.at("W.java:5");
        b.acquire(t2, l);
        b.at("W.java:6");
        b.write(t2, x);
        b.at("W.java:7");
        b.release(t2, l);
        let original = b.finish();

        let text = write_std(&original);
        let reparsed = parse_std(&text).unwrap();
        assert_eq!(reparsed.len(), original.len());
        for (a, b) in original.events().iter().zip(reparsed.events()) {
            assert_eq!(a.kind(), b.kind());
            assert_eq!(a.thread(), b.thread());
        }
        assert_eq!(thread_of(&reparsed, 3), ThreadId::new(1));
    }

    #[test]
    fn roundtrip_csv() {
        let trace = parse_std(SAMPLE).unwrap();
        let csv = write_csv(&trace);
        assert!(csv.starts_with("thread,op,location\n"));
        let reparsed = parse_csv(&csv).unwrap();
        assert_eq!(reparsed.len(), trace.len());
    }
}
