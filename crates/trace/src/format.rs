//! Textual trace formats: the pipe-separated "std" format and CSV.
//!
//! The authors' RAPID tool consumes traces produced by RVPredict's logger in
//! a simple line-oriented format; we model that with the *std* format:
//!
//! ```text
//! # comments and blank lines are ignored
//! t1|acq(l)|Account.java:41
//! t1|r(balance)|Account.java:42
//! t1|w(balance)|Account.java:42
//! t1|rel(l)|Account.java:43
//! main|fork(t1)|Main.java:10
//! t1|acq(l)
//! ```
//!
//! Every line is `<thread>|<op>(<target>)|<location>`; `<op>` is one of
//! `acq`, `rel`, `r`, `w`, `fork`, `join`; the location field is optional
//! (`t1|acq(l)` and `t1|acq(l)|` are both accepted, and the event gets a
//! synthetic `line<N>` location).  The CSV flavour uses commas instead of
//! pipes (`thread,op(target),location`) and may start with a
//! `thread,op,location` header line, which is skipped wherever it appears
//! as the first content line (comments and blank lines are ignored before
//! it, like everywhere else).
//!
//! # Streaming
//!
//! [`StreamReader`] is the core implementation: an iterator of
//! [`Result<Event, ParseError>`] over any [`BufRead`] that interns names on
//! the fly and never materializes a [`Trace`].  The batch entry points
//! ([`parse_std`], [`parse_csv`]) are thin wrappers that drain a reader and
//! collect the events into a [`Trace`], so the two paths cannot diverge.

use std::error::Error;
use std::fmt;
use std::io::BufRead;

use rapid_vc::ThreadId;

use crate::builder::Interner;
use crate::event::{Event, EventId, EventKind};
use crate::ids::{Location, LockId, VarId};
use crate::trace::Trace;

/// Why a trace file could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// The line does not have the required number of fields.
    MissingField,
    /// The operation mnemonic is not one of `acq`, `rel`, `r`, `w`, `fork`, `join`.
    UnknownOp(String),
    /// The operation field is not of the form `op(target)`.
    MalformedOp(String),
    /// The underlying reader failed (streaming only).
    Io(String),
}

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseErrorKind::MissingField => {
                write!(f, "line {}: expected `thread|op(target)|location`", self.line)
            }
            ParseErrorKind::UnknownOp(op) => {
                write!(f, "line {}: unknown operation `{op}`", self.line)
            }
            ParseErrorKind::MalformedOp(op) => {
                write!(f, "line {}: malformed operation `{op}`, expected `op(target)`", self.line)
            }
            ParseErrorKind::Io(error) => {
                write!(f, "line {}: read error: {error}", self.line)
            }
        }
    }
}

impl Error for ParseError {}

/// Interned name tables built up while streaming a trace, and a factory for
/// the next [`Event`].
///
/// Names are assigned dense ids in order of first appearance in the event
/// stream (note this can differ from the id assignment of the
/// [`TraceBuilder`](crate::TraceBuilder) that produced a file, which interns
/// names at declaration time — compare streamed and batch results by *name*,
/// not by raw id, unless both sides came from the same reader).
#[derive(Debug, Default, Clone)]
pub struct StreamNames {
    threads: Interner,
    locks: Interner,
    variables: Interner,
    locations: Interner,
}

impl StreamNames {
    /// Looks up a thread's name.
    pub fn thread_name(&self, thread: ThreadId) -> Option<&str> {
        self.threads.name(thread.raw())
    }

    /// Looks up a lock's name.
    pub fn lock_name(&self, lock: LockId) -> Option<&str> {
        self.locks.name(lock.raw())
    }

    /// Looks up a variable's name.
    pub fn variable_name(&self, var: VarId) -> Option<&str> {
        self.variables.name(var.raw())
    }

    /// Looks up a location's name.
    pub fn location_name(&self, location: Location) -> Option<&str> {
        if location.is_unknown() {
            return None;
        }
        self.locations.name(location.raw())
    }

    /// Number of distinct threads seen so far.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Number of distinct locks seen so far.
    pub fn num_locks(&self) -> usize {
        self.locks.len()
    }

    /// Number of distinct variables seen so far.
    pub fn num_variables(&self) -> usize {
        self.variables.len()
    }
}

/// A push-free streaming parser: an iterator of [`Event`]s over any
/// [`BufRead`], in `O(names)` memory — the trace itself is never stored.
///
/// # Examples
///
/// ```
/// use rapid_trace::format::StreamReader;
///
/// let input = "t1|w(x)|A.java:1\nt2|r(x)|B.java:2\n";
/// let mut reader = StreamReader::std(input.as_bytes());
/// let events: Vec<_> = reader.by_ref().collect::<Result<_, _>>().unwrap();
/// assert_eq!(events.len(), 2);
/// assert_ne!(events[0].thread(), events[1].thread());
/// assert_eq!(reader.names().num_variables(), 1);
/// ```
#[derive(Debug)]
pub struct StreamReader<R> {
    reader: R,
    separator: char,
    /// 1-based number of the line most recently read.
    line: usize,
    /// Whether a content (non-blank, non-comment) line has been consumed
    /// already — the CSV header is only recognized as the first one.
    seen_content: bool,
    /// Buffer reused across lines.
    buffer: String,
    names: StreamNames,
    next_event: u32,
    failed: bool,
}

impl<R: BufRead> StreamReader<R> {
    /// Creates a reader for the std (pipe-separated) format.
    pub fn std(reader: R) -> Self {
        StreamReader::with_separator(reader, '|')
    }

    /// Creates a reader for the CSV format.
    pub fn csv(reader: R) -> Self {
        StreamReader::with_separator(reader, ',')
    }

    fn with_separator(reader: R, separator: char) -> Self {
        StreamReader {
            reader,
            separator,
            line: 0,
            seen_content: false,
            buffer: String::new(),
            names: StreamNames::default(),
            next_event: 0,
            failed: false,
        }
    }

    /// The name tables interned so far (grow as events are read).
    pub fn names(&self) -> &StreamNames {
        &self.names
    }

    /// Consumes the reader, returning the final name tables.
    pub fn into_names(self) -> StreamNames {
        self.names
    }

    /// Number of events produced so far.
    pub fn events_read(&self) -> usize {
        self.next_event as usize
    }

    /// 1-based number of the last line read (0 before the first line).
    pub fn line(&self) -> usize {
        self.line
    }
}

/// Parses one content line into an event, interning through `names`.  A free
/// function (rather than a `StreamReader` method) so the line buffer and the
/// name tables can be borrowed disjointly — the hot path performs no
/// per-line allocation beyond first-time interning.
fn parse_content_line(
    line: &str,
    line_number: usize,
    separator: char,
    is_first_content: bool,
    names: &mut StreamNames,
    next_event: &mut u32,
) -> Result<Option<Event>, ParseError> {
    // Skip a CSV header if it is the first content line of the input.
    if separator == ','
        && is_first_content
        && line.len() >= 7
        && line.as_bytes()[..7].eq_ignore_ascii_case(b"thread,")
    {
        return Ok(None);
    }
    let mut fields = line.split(separator).map(str::trim);
    let thread = fields
        .next()
        .filter(|field| !field.is_empty())
        .ok_or(ParseError { line: line_number, kind: ParseErrorKind::MissingField })?;
    let op = fields
        .next()
        .filter(|field| !field.is_empty())
        .ok_or(ParseError { line: line_number, kind: ParseErrorKind::MissingField })?;
    let location = fields.next().filter(|field| !field.is_empty());

    let (mnemonic, target) = split_op(op).ok_or_else(|| ParseError {
        line: line_number,
        kind: ParseErrorKind::MalformedOp(op.to_owned()),
    })?;

    let thread_id = ThreadId::new(names.threads.intern(thread));
    let kind = match mnemonic {
        "acq" | "acquire" => EventKind::Acquire(LockId::new(names.locks.intern(target))),
        "rel" | "release" => EventKind::Release(LockId::new(names.locks.intern(target))),
        "r" | "read" => EventKind::Read(VarId::new(names.variables.intern(target))),
        "w" | "write" => EventKind::Write(VarId::new(names.variables.intern(target))),
        "fork" => EventKind::Fork(ThreadId::new(names.threads.intern(target))),
        "join" => EventKind::Join(ThreadId::new(names.threads.intern(target))),
        other => {
            return Err(ParseError {
                line: line_number,
                kind: ParseErrorKind::UnknownOp(other.to_owned()),
            })
        }
    };

    let id = EventId::new(*next_event);
    *next_event += 1;
    // Like `TraceBuilder`, events without an explicit location get a
    // synthetic `line<N>` one (N = 1-based event index), so that race
    // *location pairs* stay meaningful.
    let location_id = match location {
        Some(name) => Location::new(names.locations.intern(name)),
        None => {
            let synthetic = format!("line{}", *next_event);
            Location::new(names.locations.intern(&synthetic))
        }
    };
    Ok(Some(Event::new(id, thread_id, kind, location_id)))
}

impl<R: BufRead> Iterator for StreamReader<R> {
    type Item = Result<Event, ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            self.buffer.clear();
            match self.reader.read_line(&mut self.buffer) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(error) => {
                    self.failed = true;
                    return Some(Err(ParseError {
                        line: self.line + 1,
                        kind: ParseErrorKind::Io(error.to_string()),
                    }));
                }
            }
            self.line += 1;
            let line = self.buffer.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let is_first_content = !self.seen_content;
            self.seen_content = true;
            match parse_content_line(
                self.buffer.trim(),
                self.line,
                self.separator,
                is_first_content,
                &mut self.names,
                &mut self.next_event,
            ) {
                Ok(Some(event)) => return Some(Ok(event)),
                Ok(None) => continue, // skipped CSV header
                Err(error) => {
                    self.failed = true;
                    return Some(Err(error));
                }
            }
        }
    }
}

fn split_op(op: &str) -> Option<(&str, &str)> {
    let open = op.find('(')?;
    if !op.ends_with(')') {
        return None;
    }
    let mnemonic = &op[..open];
    let target = &op[open + 1..op.len() - 1];
    if mnemonic.is_empty() || target.is_empty() {
        return None;
    }
    Some((mnemonic, target))
}

/// Drains a [`StreamReader`] into a fully materialized [`Trace`]
/// (batch = stream + collect).
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
pub fn collect_trace<R: BufRead>(mut reader: StreamReader<R>) -> Result<Trace, ParseError> {
    let mut events = Vec::new();
    for event in reader.by_ref() {
        events.push(event?);
    }
    let names = reader.into_names();
    Ok(Trace::from_parts(
        events,
        names.threads.into_names(),
        names.locks.into_names(),
        names.variables.into_names(),
        names.locations.into_names(),
    ))
}

/// Parses a trace in the std (pipe-separated) format.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line number.
pub fn parse_std(input: &str) -> Result<Trace, ParseError> {
    collect_trace(StreamReader::std(input.as_bytes()))
}

/// Parses a trace in CSV format (`thread,op(target),location`, optionally
/// preceded by a `thread,op,location` header).
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line number.
pub fn parse_csv(input: &str) -> Result<Trace, ParseError> {
    collect_trace(StreamReader::csv(input.as_bytes()))
}

fn event_line(trace: &Trace, event_index: usize, separator: char) -> String {
    let event = &trace.events()[event_index];
    let thread = trace
        .thread_name(event.thread())
        .map(str::to_owned)
        .unwrap_or_else(|| event.thread().to_string());
    let target = match event.kind() {
        EventKind::Acquire(lock) | EventKind::Release(lock) => {
            trace.lock_name(lock).map(str::to_owned).unwrap_or_else(|| lock.to_string())
        }
        EventKind::Read(var) | EventKind::Write(var) => {
            trace.variable_name(var).map(str::to_owned).unwrap_or_else(|| var.to_string())
        }
        EventKind::Fork(thread) | EventKind::Join(thread) => {
            trace.thread_name(thread).map(str::to_owned).unwrap_or_else(|| thread.to_string())
        }
    };
    let location = trace
        .location_name(event.location())
        .map(str::to_owned)
        .unwrap_or_else(|| event.location().to_string());
    format!("{thread}{separator}{op}({target}){separator}{location}", op = event.kind().mnemonic())
}

/// Serializes a trace to the std (pipe-separated) format.
pub fn write_std(trace: &Trace) -> String {
    let mut out = String::new();
    for index in 0..trace.len() {
        out.push_str(&event_line(trace, index, '|'));
        out.push('\n');
    }
    out
}

/// Serializes a trace to CSV (with a header line).
pub fn write_csv(trace: &Trace) -> String {
    let mut out = String::from("thread,op,location\n");
    for index in 0..trace.len() {
        out.push_str(&event_line(trace, index, ','));
        out.push('\n');
    }
    out
}

/// Convenience: returns the thread that performs the `index`-th event of a
/// parsed trace (used by round-trip tests).
pub fn thread_of(trace: &Trace, index: usize) -> ThreadId {
    trace.events()[index].thread()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{LockId, VarId};
    use crate::TraceBuilder;

    const SAMPLE: &str = "\
# a small trace
t1|acq(l)|A.java:1
t1|w(x)|A.java:2
t1|rel(l)|A.java:3

t2|acq(l)|B.java:7
t2|r(x)|B.java:8
t2|rel(l)|B.java:9
main|fork(t1)|Main.java:1
";

    #[test]
    fn parses_std_format() {
        let trace = parse_std(SAMPLE).unwrap();
        assert_eq!(trace.len(), 7);
        assert_eq!(trace.num_threads(), 3);
        assert_eq!(trace.num_locks(), 1);
        assert_eq!(trace.num_variables(), 1);
        assert_eq!(trace[0].kind(), EventKind::Acquire(LockId::new(0)));
        assert_eq!(trace[4].kind(), EventKind::Read(VarId::new(0)));
        assert!(trace[6].kind().is_thread_op());
        assert_eq!(trace.location_name(trace[1].location()), Some("A.java:2"));
    }

    #[test]
    fn parses_csv_with_header() {
        let csv = "thread,op,location\nt1,acq(l),A:1\nt1,w(x),A:2\nt1,rel(l),A:3\n";
        let trace = parse_csv(csv).unwrap();
        assert_eq!(trace.len(), 3);
        assert!(trace.validate().is_ok());
    }

    #[test]
    fn csv_header_is_skipped_after_comments_and_blank_lines() {
        // Regression: the header used to be recognized only as the physical
        // first line, so a leading comment made parsing fail even though
        // comments are documented as ignored everywhere.
        let csv = "# logged by rapid\n\nthread,op,location\nt1,acq(l),A:1\nt1,rel(l),A:2\n";
        let trace = parse_csv(csv).unwrap();
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn location_is_optional() {
        let trace = parse_std("t1|w(x)\nt1|r(x)").unwrap();
        assert_eq!(trace.len(), 2);
        // Default locations are still distinct.
        assert_ne!(trace[0].location(), trace[1].location());
    }

    #[test]
    fn location_is_optional_in_both_flavours() {
        // `t1|acq(l)` with no third field, with a trailing separator, and the
        // CSV equivalents must all parse (the documented optional-location
        // form).
        for input in ["t1|acq(l)\nt1|rel(l)", "t1|acq(l)|\nt1|rel(l)|"] {
            let trace = parse_std(input).unwrap_or_else(|e| panic!("{input:?}: {e}"));
            assert_eq!(trace.len(), 2);
            assert_eq!(trace.location_name(trace[0].location()), Some("line1"));
        }
        for input in ["t1,acq(l)\nt1,rel(l)", "t1,acq(l),\nt1,rel(l),"] {
            let trace = parse_csv(input).unwrap_or_else(|e| panic!("{input:?}: {e}"));
            assert_eq!(trace.len(), 2);
        }
    }

    #[test]
    fn unknown_op_is_an_error() {
        let err = parse_std("t1|lock(l)|A:1").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(matches!(err.kind, ParseErrorKind::UnknownOp(_)));
        assert!(err.to_string().contains("unknown operation"));
    }

    #[test]
    fn malformed_op_is_an_error() {
        let err = parse_std("t1|acq l|A:1").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::MalformedOp(_)));
        let err = parse_std("t1|acq()|A:1").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::MalformedOp(_)));
    }

    #[test]
    fn missing_field_is_an_error() {
        let err = parse_std("t1").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::MissingField);
        let err = parse_std("\n\nt1|").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn stream_reader_yields_events_without_a_trace() {
        let mut reader = StreamReader::std(SAMPLE.as_bytes());
        let mut count = 0;
        for event in reader.by_ref() {
            let event = event.expect("sample parses");
            assert_eq!(event.id().index(), count);
            count += 1;
        }
        assert_eq!(count, 7);
        assert_eq!(reader.events_read(), 7);
        let names = reader.names();
        assert_eq!(names.num_threads(), 3);
        assert_eq!(names.num_locks(), 1);
        assert_eq!(names.thread_name(ThreadId::new(0)), Some("t1"));
        assert_eq!(names.lock_name(LockId::new(0)), Some("l"));
        assert_eq!(names.variable_name(VarId::new(0)), Some("x"));
    }

    #[test]
    fn stream_reader_stops_at_the_first_error() {
        let input = "t1|w(x)|A:1\nt1|nope(x)|A:2\nt1|r(x)|A:3\n";
        let mut reader = StreamReader::std(input.as_bytes());
        assert!(reader.next().unwrap().is_ok());
        let err = reader.next().unwrap().unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, ParseErrorKind::UnknownOp(_)));
        assert!(reader.next().is_none(), "the reader fuses after an error");
    }

    #[test]
    fn stream_and_batch_agree_on_the_sample() {
        let trace = parse_std(SAMPLE).unwrap();
        let streamed: Vec<Event> =
            StreamReader::std(SAMPLE.as_bytes()).collect::<Result<_, _>>().unwrap();
        assert_eq!(trace.events(), streamed.as_slice());
    }

    #[test]
    fn roundtrip_std() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("worker-1");
        let t2 = b.thread("worker-2");
        let l = b.lock("mutex");
        let x = b.variable("counter");
        b.at("W.java:5");
        b.acquire(t1, l);
        b.at("W.java:6");
        b.write(t1, x);
        b.at("W.java:7");
        b.release(t1, l);
        b.at("W.java:5");
        b.acquire(t2, l);
        b.at("W.java:6");
        b.write(t2, x);
        b.at("W.java:7");
        b.release(t2, l);
        let original = b.finish();

        let text = write_std(&original);
        let reparsed = parse_std(&text).unwrap();
        assert_eq!(reparsed.len(), original.len());
        for (a, b) in original.events().iter().zip(reparsed.events()) {
            assert_eq!(a.kind(), b.kind());
            assert_eq!(a.thread(), b.thread());
        }
        assert_eq!(thread_of(&reparsed, 3), ThreadId::new(1));
    }

    #[test]
    fn roundtrip_csv() {
        let trace = parse_std(SAMPLE).unwrap();
        let csv = write_csv(&trace);
        assert!(csv.starts_with("thread,op,location\n"));
        let reparsed = parse_csv(&csv).unwrap();
        assert_eq!(reparsed.len(), trace.len());
    }
}
