//! Dense identifiers for locks, variables and program locations.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! dense_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a dense index.
            pub const fn new(index: u32) -> Self {
                $name(index)
            }

            /// Returns the dense index backing this id.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw `u32` value.
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl From<u32> for $name {
            fn from(value: u32) -> Self {
                $name(value)
            }
        }

        impl From<$name> for u32 {
            fn from(value: $name) -> Self {
                value.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

dense_id!(
    /// A dense identifier for a lock (synchronization object).
    LockId,
    "L"
);

dense_id!(
    /// A dense identifier for a shared memory location ("variable").
    VarId,
    "x"
);

dense_id!(
    /// A dense identifier for a program location (source line / pc).
    ///
    /// The paper counts *distinct race pairs* as unordered pairs of program
    /// locations (§4, "Race detection capability"), so every event carries a
    /// `Location`.
    Location,
    "pc"
);

impl Location {
    /// The unknown/unspecified program location.
    pub const UNKNOWN: Location = Location(u32::MAX);

    /// Returns true for [`Location::UNKNOWN`].
    pub const fn is_unknown(self) -> bool {
        self.0 == u32::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_id_roundtrip() {
        let l = LockId::new(4);
        assert_eq!(l.index(), 4);
        assert_eq!(l.raw(), 4);
        assert_eq!(LockId::from(4u32), l);
        assert_eq!(u32::from(l), 4);
        assert_eq!(l.to_string(), "L4");
    }

    #[test]
    fn var_id_display() {
        assert_eq!(VarId::new(0).to_string(), "x0");
        assert!(VarId::new(1) > VarId::new(0));
    }

    #[test]
    fn location_unknown_sentinel() {
        assert!(Location::UNKNOWN.is_unknown());
        assert!(!Location::new(3).is_unknown());
        assert_eq!(Location::new(3).to_string(), "pc3");
    }
}
