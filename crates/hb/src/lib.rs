//! Happens-before (HB) race detection for `rapid-rs`.
//!
//! HB ([Lamport 1978]) is the classical partial order used for sound dynamic
//! race detection and the baseline the paper compares WCP against: it orders
//! (i) events of the same thread by program order and (ii) a `rel(l)` before
//! every later `acq(l)` of the same lock (plus fork/join edges).  Conflicting
//! events unordered by HB are reported as races.
//!
//! Two detectors are provided:
//!
//! * [`HbDetector`] — the textbook Djit⁺-style vector-clock algorithm, the
//!   same algorithm the authors' RAPID tool implements for its HB baseline
//!   (unwindowed, linear time).
//! * [`FastTrackDetector`] — the FastTrack epoch optimization (the "epoch
//!   based optimizations" listed as future work in §6 of the paper): most
//!   reads/writes are tracked by a single `(thread, clock)` epoch instead of
//!   a full vector clock.
//!
//! Both detectors report [`rapid_trace::RaceReport`]s whose distinct location
//! pairs are what Table 1 column 7 counts.
//!
//! # Examples
//!
//! ```
//! use rapid_gen::figures;
//! use rapid_hb::HbDetector;
//!
//! // Figure 1b: HB misses the predictable race on y (the rel/acq pair on l
//! // orders the two critical sections).
//! let figure = figures::figure_1b();
//! let report = HbDetector::new().detect(&figure.trace);
//! assert_eq!(report.distinct_pairs(), 0);
//! ```
//!
//! [Lamport 1978]: https://doi.org/10.1145/359545.359563

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detector;
pub mod fasttrack;

pub use detector::{HbDetector, HbStats, HbStream, HbTimestamps};
pub use fasttrack::{FastTrackDetector, FastTrackStream};
