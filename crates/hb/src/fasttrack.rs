//! FastTrack-style epoch-optimized happens-before detection.
//!
//! The paper lists "epoch based optimizations for improving memory
//! requirements" as future work (§6).  This module implements the classic
//! FastTrack optimization for the HB baseline: a variable's last write is
//! represented by a single epoch `c@t`, and its reads stay an epoch as long
//! as they are totally ordered, expanding to a full vector clock only when
//! reads become concurrent ("read-shared").

use std::collections::HashMap;

use rapid_trace::{
    Event, EventId, EventKind, Location, Race, RaceDrain, RaceKind, RaceReport, Trace, VarId,
};
use rapid_vc::{Epoch, ThreadId, VectorClock};

#[derive(Debug, Clone, Copy)]
struct AccessMeta {
    event: EventId,
    location: Location,
}

/// Read history of a variable: an epoch while reads are ordered, a vector
/// clock once they are concurrent.
#[derive(Debug, Clone)]
enum ReadState {
    Epoch(Epoch),
    Shared(VectorClock),
}

#[derive(Debug, Clone)]
struct VarState {
    write: Epoch,
    write_meta: Option<AccessMeta>,
    read: ReadState,
    /// Last read per thread, for race-pair reporting once reads are shared.
    read_meta: HashMap<ThreadId, AccessMeta>,
}

impl Default for VarState {
    fn default() -> Self {
        VarState {
            write: Epoch::zero(),
            write_meta: None,
            read: ReadState::Epoch(Epoch::zero()),
            read_meta: HashMap::new(),
        }
    }
}

/// The FastTrack-style epoch-optimized HB detector.
///
/// Reports the same HB races as [`crate::HbDetector`] (the epoch
/// representation is an optimization, not an approximation), while storing
/// `O(1)` state per variable in the common case.
#[derive(Debug, Default, Clone)]
pub struct FastTrackDetector {
    _private: (),
}

#[derive(Debug)]
struct FtState {
    clocks: Vec<VectorClock>,
    lock_clocks: HashMap<rapid_trace::LockId, VectorClock>,
    vars: HashMap<VarId, VarState>,
    report: RaceReport,
}

impl FtState {
    fn new(threads: usize) -> Self {
        let clocks = (0..threads.max(1))
            .map(|t| VectorClock::singleton(ThreadId::new(t as u32), 1))
            .collect();
        FtState {
            clocks,
            lock_clocks: HashMap::new(),
            vars: HashMap::new(),
            report: RaceReport::new(),
        }
    }

    fn clock_mut(&mut self, thread: ThreadId) -> &mut VectorClock {
        let index = thread.index();
        if index >= self.clocks.len() {
            for t in self.clocks.len()..=index {
                self.clocks.push(VectorClock::singleton(ThreadId::new(t as u32), 1));
            }
        }
        &mut self.clocks[index]
    }

    fn increment(&mut self, thread: ThreadId) {
        let clock = self.clock_mut(thread);
        let next = clock.get(thread) + 1;
        clock.set(thread, next);
    }

    fn record_race(&mut self, event: &Event, var: VarId, prior: Option<AccessMeta>) {
        let (first, first_location) = match prior {
            Some(meta) => (meta.event, meta.location),
            // The prior access metadata is always kept alongside the epoch;
            // this fallback never triggers on well-formed state but keeps the
            // detector total.
            None => (event.id(), event.location()),
        };
        self.report.push(Race {
            first,
            second: event.id(),
            variable: var,
            first_location,
            second_location: event.location(),
            kind: RaceKind::Hb,
        });
    }

    fn read(&mut self, event: &Event, var: VarId) {
        let thread = event.thread();
        let clock = self.clock_mut(thread).clone();
        let epoch = Epoch::of_thread(&clock, thread);
        let state = self.vars.entry(var).or_default();

        // Same-epoch fast path.
        if let ReadState::Epoch(read) = &state.read {
            if *read == epoch {
                return;
            }
        }

        // Write-read race check (the write epoch cannot change during a read).
        let write_unordered = !state.write.happens_before(&clock);
        let write_meta = state.write_meta;

        // Update read state.
        match &mut state.read {
            ReadState::Epoch(read) => {
                if read.happens_before(&clock) {
                    *read = epoch;
                    state.read_meta.clear();
                } else {
                    // Concurrent reads: expand to a vector clock.
                    let mut shared = VectorClock::bottom();
                    shared.set(read.thread(), read.clock());
                    shared.set(thread, epoch.clock());
                    state.read = ReadState::Shared(shared);
                }
            }
            ReadState::Shared(shared) => {
                shared.set(thread, epoch.clock());
            }
        }
        state
            .read_meta
            .insert(thread, AccessMeta { event: event.id(), location: event.location() });

        if write_unordered {
            self.record_race(event, var, write_meta);
        }
    }

    fn write(&mut self, event: &Event, var: VarId) {
        let thread = event.thread();
        let clock = self.clock_mut(thread).clone();
        let epoch = Epoch::of_thread(&clock, thread);
        let state = self.vars.entry(var).or_default();

        // Same-epoch fast path.
        if state.write == epoch {
            return;
        }

        // Write-write race check.
        let mut races: Vec<Option<AccessMeta>> = Vec::new();
        if !state.write.happens_before(&clock) {
            races.push(state.write_meta);
        }
        // Read-write race check.
        match &state.read {
            ReadState::Epoch(read) => {
                if !read.happens_before(&clock) && read.thread() != thread {
                    races.push(state.read_meta.get(&read.thread()).copied());
                }
            }
            ReadState::Shared(shared) => {
                for (other, component) in shared.iter() {
                    if other != thread && component > clock.get(other) {
                        races.push(state.read_meta.get(&other).copied());
                    }
                }
            }
        }

        state.write = epoch;
        state.write_meta = Some(AccessMeta { event: event.id(), location: event.location() });

        for prior in races {
            self.record_race(event, var, prior);
        }
    }
}

/// The push-based streaming core of the FastTrack detector.
///
/// Feed events in trace order with [`FastTrackStream::on_event`]; each call
/// returns the races detected at that event.  Per-variable state is a
/// single epoch in the common case, so the live footprint is
/// `O(threads + variables + locks)` — independent of trace length.
/// [`FastTrackDetector::detect`] is a thin wrapper that streams a
/// materialized trace through this core.
#[derive(Debug)]
pub struct FastTrackStream {
    state: FtState,
    drain: RaceDrain,
    events: usize,
}

impl Default for FastTrackStream {
    fn default() -> Self {
        FastTrackStream::new()
    }
}

impl FastTrackStream {
    /// Creates a stream that discovers threads on the fly.
    pub fn new() -> Self {
        FastTrackStream::with_threads(0)
    }

    /// Creates a stream pre-sized for `threads` threads.
    pub fn with_threads(threads: usize) -> Self {
        FastTrackStream { state: FtState::new(threads), drain: RaceDrain::new(), events: 0 }
    }

    /// Processes one event, returning the races detected at it.
    pub fn on_event(&mut self, event: &Event) -> Vec<Race> {
        let state = &mut self.state;
        let thread = event.thread();
        self.events += 1;
        match event.kind() {
            EventKind::Acquire(lock) => {
                if let Some(lock_clock) = state.lock_clocks.get(&lock).cloned() {
                    state.clock_mut(thread).join(&lock_clock);
                }
            }
            EventKind::Release(lock) => {
                let clock = state.clock_mut(thread).clone();
                state.lock_clocks.insert(lock, clock);
                state.increment(thread);
            }
            EventKind::Read(var) => state.read(event, var),
            EventKind::Write(var) => state.write(event, var),
            EventKind::Fork(child) => {
                let clock = state.clock_mut(thread).clone();
                state.clock_mut(child).join(&clock);
                state.increment(thread);
            }
            EventKind::Join(child) => {
                let clock = state.clock_mut(child).clone();
                state.clock_mut(thread).join(&clock);
            }
        }
        self.drain.fresh(&self.state.report)
    }

    /// Number of events processed so far.
    pub fn events_seen(&self) -> usize {
        self.events
    }

    /// Races found so far.
    pub fn report(&self) -> &RaceReport {
        &self.state.report
    }

    /// The run's typed counters so far.
    pub fn stats(&self) -> crate::HbStats {
        crate::HbStats { events: self.events, race_events: self.state.report.len() }
    }

    /// Ends the stream, returning the accumulated race report.
    pub fn finish(&mut self) -> RaceReport {
        std::mem::take(&mut self.state.report)
    }
}

impl FastTrackDetector {
    /// Creates a detector.
    pub fn new() -> Self {
        FastTrackDetector::default()
    }

    /// Runs the epoch-optimized HB analysis over `trace`.
    pub fn detect(&self, trace: &Trace) -> RaceReport {
        let mut stream = FastTrackStream::with_threads(trace.num_threads());
        for event in trace.events() {
            stream.on_event(event);
        }
        stream.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HbDetector;
    use rapid_gen::figures;
    use rapid_gen::random::RandomTraceConfig;
    use rapid_trace::TraceBuilder;
    use std::collections::BTreeSet;

    fn racy_variables(report: &RaceReport) -> BTreeSet<VarId> {
        report.races().iter().map(|race| race.variable).collect()
    }

    #[test]
    fn detects_simple_write_write_race() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let x = b.variable("x");
        b.write(t1, x);
        b.write(t2, x);
        let report = FastTrackDetector::new().detect(&b.finish());
        assert_eq!(report.distinct_pairs(), 1);
    }

    #[test]
    fn detects_read_write_race_after_shared_reads() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let t3 = b.thread("t3");
        let x = b.variable("x");
        b.read(t1, x);
        b.read(t2, x);
        b.write(t3, x);
        let report = FastTrackDetector::new().detect(&b.finish());
        // The write races with both concurrent reads.
        assert_eq!(report.len(), 2);
    }

    #[test]
    fn protected_accesses_do_not_race() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let l = b.lock("l");
        let x = b.variable("x");
        b.critical_section(t1, l, |b| {
            b.read(t1, x);
            b.write(t1, x);
        });
        b.critical_section(t2, l, |b| {
            b.read(t2, x);
            b.write(t2, x);
        });
        assert!(FastTrackDetector::new().detect(&b.finish()).is_empty());
    }

    #[test]
    fn same_epoch_accesses_are_cheap_and_silent() {
        let mut b = TraceBuilder::new();
        let t = b.thread("t");
        let x = b.variable("x");
        for _ in 0..10 {
            b.write(t, x);
            b.read(t, x);
        }
        assert!(FastTrackDetector::new().detect(&b.finish()).is_empty());
    }

    #[test]
    fn agrees_with_vector_clock_detector_on_figures() {
        for figure in figures::paper_figures() {
            let vc = HbDetector::new().detect(&figure.trace);
            let ft = FastTrackDetector::new().detect(&figure.trace);
            assert_eq!(
                racy_variables(&vc),
                racy_variables(&ft),
                "{}: FastTrack and Djit+ disagree on racy variables",
                figure.name
            );
        }
    }

    #[test]
    fn agrees_with_vector_clock_detector_on_random_traces() {
        for seed in 0..10 {
            let config = RandomTraceConfig {
                seed,
                events: 400,
                threads: 4,
                locks: 2,
                variables: 6,
                disciplined_probability: 0.5,
                ..RandomTraceConfig::default()
            };
            let trace = config.generate();
            let vc = HbDetector::new().detect(&trace);
            let ft = FastTrackDetector::new().detect(&trace);
            assert_eq!(
                racy_variables(&vc),
                racy_variables(&ft),
                "seed {seed}: FastTrack and Djit+ disagree on racy variables"
            );
        }
    }
}
