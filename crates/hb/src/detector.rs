//! The Djit⁺-style vector-clock happens-before detector.

use std::collections::HashMap;

use rapid_trace::{
    Event, EventId, EventKind, Location, Race, RaceDrain, RaceKind, RaceReport, Trace, VarId,
};
use rapid_vc::{ThreadId, VectorClock};

/// Information about the last access of a given kind to a variable by a
/// particular thread, kept for race-pair reporting.
#[derive(Debug, Clone, Copy)]
struct LastAccess {
    /// Local time of the accessing thread when the access happened.
    epoch: u64,
    /// The access event.
    event: EventId,
    /// Its program location.
    location: Location,
}

/// Per-variable access history: the last read and last write of each thread.
#[derive(Debug, Clone, Default)]
struct VarHistory {
    reads: HashMap<ThreadId, LastAccess>,
    writes: HashMap<ThreadId, LastAccess>,
}

/// The vector-clock happens-before race detector (Djit⁺ style).
///
/// The detector performs a single forward pass over the trace, maintaining a
/// vector clock `C_t` per thread and `L_l` per lock.  An access is in race
/// with an earlier conflicting access `a` (by thread `u`) iff the local time
/// of `a` exceeds `C_t(u)` at the time of the access — i.e. the two are
/// unordered by HB.
#[derive(Debug, Default, Clone)]
pub struct HbDetector {
    _private: (),
}

/// The HB timestamps (`C_e` for every event `e`) of a trace, mainly used by
/// tests and the reference closure comparison.
#[derive(Debug, Clone)]
pub struct HbTimestamps {
    clocks: Vec<VectorClock>,
}

impl HbTimestamps {
    /// The HB time of event `e`.
    pub fn clock(&self, event: EventId) -> &VectorClock {
        &self.clocks[event.index()]
    }

    /// Returns true when `a` happens before (or equals) `b` according to the
    /// computed timestamps, for `a` earlier than `b` in trace order.
    pub fn ordered(&self, a: EventId, b: EventId) -> bool {
        self.clock(a).le(self.clock(b))
    }

    /// Number of events timestamped.
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// Returns true when no event was timestamped.
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }
}

#[derive(Debug)]
struct HbState {
    /// `C_t` for each thread.
    clocks: Vec<VectorClock>,
    /// `L_l` for each lock: the clock of the last release.
    lock_clocks: HashMap<rapid_trace::LockId, VectorClock>,
    /// Per-variable access history for race reporting.
    history: HashMap<VarId, VarHistory>,
    report: RaceReport,
}

impl HbState {
    fn new(threads: usize) -> Self {
        let mut clocks = Vec::with_capacity(threads);
        for t in 0..threads.max(1) {
            // Each thread starts at local time 1 so that "never communicated"
            // components (0) compare strictly below every real access.
            clocks.push(VectorClock::singleton(ThreadId::new(t as u32), 1));
        }
        HbState {
            clocks,
            lock_clocks: HashMap::new(),
            history: HashMap::new(),
            report: RaceReport::new(),
        }
    }

    fn clock_mut(&mut self, thread: ThreadId) -> &mut VectorClock {
        let index = thread.index();
        if index >= self.clocks.len() {
            for t in self.clocks.len()..=index {
                self.clocks.push(VectorClock::singleton(ThreadId::new(t as u32), 1));
            }
        }
        &mut self.clocks[index]
    }

    fn clock(&mut self, thread: ThreadId) -> VectorClock {
        self.clock_mut(thread).clone()
    }

    fn increment(&mut self, thread: ThreadId) {
        let clock = self.clock_mut(thread);
        let next = clock.get(thread) + 1;
        clock.set(thread, next);
    }

    /// Records race pairs between `event` and every earlier conflicting
    /// access that is not HB-ordered before it.
    fn check_and_record(&mut self, event: &Event, var: VarId, kind: RaceKind) {
        let thread = event.thread();
        let clock = self.clock(thread);
        let history = self.history.entry(var).or_default();
        let mut found: Vec<(LastAccess, bool)> = Vec::new();

        // A write conflicts with earlier reads and writes; a read only with
        // earlier writes.
        for (&other, access) in &history.writes {
            if other != thread && access.epoch > clock.get(other) {
                found.push((*access, true));
            }
        }
        if event.kind().is_write() {
            for (&other, access) in &history.reads {
                if other != thread && access.epoch > clock.get(other) {
                    found.push((*access, false));
                }
            }
        }
        for (access, _) in found {
            self.report.push(Race {
                first: access.event,
                second: event.id(),
                variable: var,
                first_location: access.location,
                second_location: event.location(),
                kind,
            });
        }

        // Update the history with this access.
        let entry =
            LastAccess { epoch: clock.get(thread), event: event.id(), location: event.location() };
        let history = self.history.entry(var).or_default();
        if event.kind().is_write() {
            history.writes.insert(thread, entry);
        } else {
            history.reads.insert(thread, entry);
        }
    }
}

/// The push-based streaming core of the Djit⁺ HB detector.
///
/// Feed events in trace order with [`HbStream::on_event`]; each call returns
/// the races detected *at* that event.  [`HbStream::finish`] yields the
/// accumulated [`RaceReport`].  State is `O(threads · (threads + variables +
/// locks))` — independent of trace length — and threads are discovered as
/// their events arrive, so the stream can run over a trace file without ever
/// materializing a [`Trace`].  [`HbDetector::detect`] is a thin wrapper that
/// streams a materialized trace through this core (batch = stream +
/// collect).
#[derive(Debug)]
pub struct HbStream {
    state: HbState,
    drain: RaceDrain,
    events: usize,
}

impl Default for HbStream {
    fn default() -> Self {
        HbStream::new()
    }
}

impl HbStream {
    /// Creates a stream that discovers threads on the fly.
    pub fn new() -> Self {
        HbStream::with_threads(0)
    }

    /// Creates a stream pre-sized for `threads` threads (identical results;
    /// avoids re-allocation when the count is known up front).
    pub fn with_threads(threads: usize) -> Self {
        HbStream { state: HbState::new(threads), drain: RaceDrain::new(), events: 0 }
    }

    /// Processes one event, returning the races detected at it.
    pub fn on_event(&mut self, event: &Event) -> Vec<Race> {
        let state = &mut self.state;
        let thread = event.thread();
        self.events += 1;
        match event.kind() {
            EventKind::Acquire(lock) => {
                if let Some(lock_clock) = state.lock_clocks.get(&lock).cloned() {
                    state.clock_mut(thread).join(&lock_clock);
                }
            }
            EventKind::Release(lock) => {
                let clock = state.clock(thread);
                state.lock_clocks.insert(lock, clock);
                state.increment(thread);
            }
            EventKind::Read(var) => {
                state.check_and_record(event, var, RaceKind::Hb);
            }
            EventKind::Write(var) => {
                state.check_and_record(event, var, RaceKind::Hb);
            }
            EventKind::Fork(child) => {
                let clock = state.clock(thread);
                state.clock_mut(child).join(&clock);
                state.increment(thread);
            }
            EventKind::Join(child) => {
                let clock = state.clock(child);
                state.clock_mut(thread).join(&clock);
            }
        }
        self.drain.fresh(&self.state.report)
    }

    /// The HB timestamp `C_e` of the event just processed — the thread's
    /// clock after the event, with the post-event increment of releases and
    /// forks undone (those events belong to the old local time).
    pub fn timestamp_of_last(&mut self, event: &Event) -> VectorClock {
        let thread = event.thread();
        let mut clock = self.state.clock(thread);
        if matches!(event.kind(), EventKind::Release(_) | EventKind::Fork(_)) {
            let current = clock.get(thread);
            clock.set(thread, current - 1);
        }
        clock
    }

    /// Number of events processed so far.
    pub fn events_seen(&self) -> usize {
        self.events
    }

    /// Races found so far (the report grows as events are pushed).
    pub fn report(&self) -> &RaceReport {
        &self.state.report
    }

    /// The run's typed counters so far.
    pub fn stats(&self) -> HbStats {
        HbStats { events: self.events, race_events: self.state.report.len() }
    }

    /// Ends the stream, returning the accumulated race report.
    pub fn finish(&mut self) -> RaceReport {
        std::mem::take(&mut self.state.report)
    }
}

/// Typed, mergeable counters describing one HB-family streaming run
/// ([`HbStream`] or [`FastTrackStream`](crate::FastTrackStream)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HbStats {
    /// Number of events processed.
    pub events: usize,
    /// Number of race events reported (not deduplicated by location pair).
    pub race_events: usize,
}

impl HbStats {
    /// Folds another run's counters into this one (both fields sum).
    pub fn merge(&mut self, other: &HbStats) {
        self.events += other.events;
        self.race_events += other.race_events;
    }
}

#[cfg(test)]
mod stats_tests {
    use super::HbStats;

    #[test]
    fn merge_sums_both_fields() {
        let mut left = HbStats { events: 10, race_events: 2 };
        left.merge(&HbStats { events: 5, race_events: 1 });
        assert_eq!(left, HbStats { events: 15, race_events: 3 });
    }
}

impl HbDetector {
    /// Creates a detector.
    pub fn new() -> Self {
        HbDetector::default()
    }

    /// Runs the analysis over `trace` and reports all HB races.
    pub fn detect(&self, trace: &Trace) -> RaceReport {
        self.run(trace, false).0
    }

    /// Runs the analysis and additionally returns the HB timestamp of every
    /// event (linear memory; intended for tests and cross-checks).
    pub fn detect_with_timestamps(&self, trace: &Trace) -> (RaceReport, HbTimestamps) {
        let (report, clocks) = self.run(trace, true);
        (report, HbTimestamps { clocks: clocks.expect("timestamps requested") })
    }

    fn run(&self, trace: &Trace, keep_timestamps: bool) -> (RaceReport, Option<Vec<VectorClock>>) {
        let mut stream = HbStream::with_threads(trace.num_threads());
        let mut timestamps = keep_timestamps.then(|| Vec::with_capacity(trace.len()));

        for event in trace.events() {
            stream.on_event(event);
            if let Some(timestamps) = timestamps.as_mut() {
                timestamps.push(stream.timestamp_of_last(event));
            }
        }
        (stream.finish(), timestamps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_gen::figures;
    use rapid_trace::TraceBuilder;

    #[test]
    fn detects_textbook_unprotected_race() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let x = b.variable("x");
        b.write(t1, x);
        b.write(t2, x);
        let report = HbDetector::new().detect(&b.finish());
        assert_eq!(report.len(), 1);
        assert_eq!(report.distinct_pairs(), 1);
    }

    #[test]
    fn lock_protected_accesses_do_not_race() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let l = b.lock("l");
        let x = b.variable("x");
        b.critical_section(t1, l, |b| {
            b.write(t1, x);
        });
        b.critical_section(t2, l, |b| {
            b.write(t2, x);
        });
        let report = HbDetector::new().detect(&b.finish());
        assert!(report.is_empty());
    }

    #[test]
    fn same_thread_accesses_never_race() {
        let mut b = TraceBuilder::new();
        let t = b.thread("t");
        let x = b.variable("x");
        b.write(t, x);
        b.read(t, x);
        b.write(t, x);
        assert!(HbDetector::new().detect(&b.finish()).is_empty());
    }

    #[test]
    fn read_read_sharing_is_not_a_race() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let x = b.variable("x");
        b.read(t1, x);
        b.read(t2, x);
        assert!(HbDetector::new().detect(&b.finish()).is_empty());
    }

    #[test]
    fn fork_join_create_order() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main");
        let worker = b.thread("worker");
        let x = b.variable("x");
        b.write(main, x);
        b.fork(main, worker);
        b.write(worker, x);
        b.join(main, worker);
        b.write(main, x);
        assert!(HbDetector::new().detect(&b.finish()).is_empty());
    }

    #[test]
    fn missing_fork_edge_races() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main");
        let worker = b.thread("worker");
        let x = b.variable("x");
        b.write(main, x);
        b.write(worker, x);
        b.join(main, worker);
        b.write(main, x);
        let report = HbDetector::new().detect(&b.finish());
        // Only the first pair is unordered; after join the main write is
        // ordered after the worker write.
        assert_eq!(report.distinct_pairs(), 1);
    }

    #[test]
    fn matches_paper_expectations_on_all_figures() {
        for figure in figures::paper_figures() {
            let report = HbDetector::new().detect(&figure.trace);
            let racy = report.races().iter().any(|race| {
                (race.first == figure.first && race.second == figure.second)
                    || (race.first == figure.second && race.second == figure.first)
            });
            assert_eq!(
                racy, figure.hb_race,
                "{}: HB verdict on the focal pair should be {}",
                figure.name, figure.hb_race
            );
        }
    }

    #[test]
    fn timestamps_reflect_hb_ordering() {
        let figure = figures::figure_1b();
        let (_, timestamps) = HbDetector::new().detect_with_timestamps(&figure.trace);
        assert_eq!(timestamps.len(), figure.trace.len());
        assert!(!timestamps.is_empty());
        // Thread order is always preserved.
        assert!(timestamps.ordered(rapid_trace::EventId::new(0), rapid_trace::EventId::new(1)));
        // rel(l) by t1 (event 3) happens before acq(l) by t2 (event 4).
        assert!(timestamps.ordered(rapid_trace::EventId::new(3), rapid_trace::EventId::new(4)));
        // w(y) and r(y) are HB ordered in Figure 1b (that is why HB misses it).
        assert!(timestamps.ordered(figure.first, figure.second));
    }

    #[test]
    fn race_distance_is_reported() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let x = b.variable("x");
        let local = b.variable("local");
        b.write(t1, x);
        for _ in 0..100 {
            b.read(t1, local);
        }
        b.write(t2, x);
        let report = HbDetector::new().detect(&b.finish());
        assert_eq!(report.len(), 1);
        assert_eq!(report.max_distance(), 101);
    }
}
