//! The CP race detector (whole-trace or windowed).

use rapid_trace::{Race, RaceReport, Trace};

use crate::closure::{ClosureEngine, OrderKind};

/// Causally-precedes race detection.
///
/// CP has no known linear-time algorithm (the paper conjectures a quadratic
/// lower bound), so published CP implementations split the trace into
/// bounded windows and analyze each window independently — at the cost of
/// missing every race whose two accesses fall into different windows.  This
/// detector supports both modes:
///
/// * [`CpDetector::new`] — analyze the entire trace with the closure engine
///   (exact, polynomial; only practical for small traces);
/// * [`CpDetector::windowed`] — split the trace into fixed-size windows, the
///   strategy of Smaragdakis et al.'s implementation.
///
/// # Examples
///
/// ```
/// use rapid_cp::CpDetector;
/// use rapid_gen::figures;
///
/// let figure = figures::figure_1b();
/// // CP detects the Figure 1b race that HB misses…
/// assert_eq!(CpDetector::new().detect(&figure.trace).distinct_pairs(), 1);
/// // …but a window cutting between the two accesses hides it.
/// assert_eq!(CpDetector::windowed(4).detect(&figure.trace).distinct_pairs(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CpDetector {
    window: Option<usize>,
}

impl CpDetector {
    /// Whole-trace CP analysis.
    pub fn new() -> Self {
        CpDetector { window: None }
    }

    /// Windowed CP analysis with windows of `window` events.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn windowed(window: usize) -> Self {
        assert!(window > 0, "window size must be positive");
        CpDetector { window: Some(window) }
    }

    /// The configured window size, if any.
    pub fn window(&self) -> Option<usize> {
        self.window
    }

    /// Runs the analysis and reports CP races (distinct event pairs; dedup by
    /// location pair via [`RaceReport::distinct_pairs`]).
    pub fn detect(&self, trace: &Trace) -> RaceReport {
        match self.window {
            None => ClosureEngine::new(trace).races(OrderKind::Cp),
            Some(window) => self.detect_windowed(trace, window),
        }
    }

    fn detect_windowed(&self, trace: &Trace, window: usize) -> RaceReport {
        let mut report = RaceReport::new();
        let mut start = 0;
        while start < trace.len() {
            let end = (start + window).min(trace.len());
            let (sub, mapping) = trace.subtrace(start, end);
            let engine = ClosureEngine::new(&sub);
            for race in engine.races(OrderKind::Cp).races() {
                report.push(Race {
                    first: mapping[race.first.index()],
                    second: mapping[race.second.index()],
                    ..*race
                });
            }
            start = end;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_gen::figures;
    use rapid_trace::TraceBuilder;

    #[test]
    fn whole_trace_cp_matches_figure_expectations() {
        for figure in figures::paper_figures() {
            let report = CpDetector::new().detect(&figure.trace);
            let focal_racy = report.races().iter().any(|race| {
                (race.first == figure.first && race.second == figure.second)
                    || (race.first == figure.second && race.second == figure.first)
            });
            assert_eq!(focal_racy, figure.cp_race, "{}: CP verdict on the focal pair", figure.name);
        }
    }

    #[test]
    fn windowed_cp_misses_cross_window_races() {
        // A CP race whose accesses are far apart: whole-trace CP finds it,
        // small windows do not.
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let x = b.variable("x");
        let filler = b.variable("filler");
        b.write(t1, x);
        for _ in 0..50 {
            b.read(t1, filler);
            b.read(t2, filler);
        }
        b.write(t2, x);
        let trace = b.finish();

        assert_eq!(CpDetector::new().detect(&trace).distinct_pairs(), 1);
        assert_eq!(CpDetector::windowed(10).detect(&trace).distinct_pairs(), 0);
        assert_eq!(CpDetector::windowed(1_000).detect(&trace).distinct_pairs(), 1);
    }

    #[test]
    fn windowed_race_ids_refer_to_the_original_trace() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let x = b.variable("x");
        let filler = b.variable("filler");
        for _ in 0..10 {
            b.read(t1, filler);
        }
        let first = b.write(t1, x);
        let second = b.write(t2, x);
        let trace = b.finish();
        let report = CpDetector::windowed(6).detect(&trace);
        assert_eq!(report.len(), 1);
        assert_eq!(report.races()[0].first, first);
        assert_eq!(report.races()[0].second, second);
    }

    #[test]
    fn window_accessor_and_zero_window_panic() {
        assert_eq!(CpDetector::new().window(), None);
        assert_eq!(CpDetector::windowed(128).window(), Some(128));
        assert!(std::panic::catch_unwind(|| CpDetector::windowed(0)).is_err());
    }
}
