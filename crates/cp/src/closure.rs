//! Reference closure computations of ≤HB, ≤CP and ≤WCP.
//!
//! The engine materializes the relations as explicit bit matrices and
//! saturates the defining rules (Definitions 1–3 of the paper) to a fixpoint.
//! It is exact but polynomial — use it on small traces (figures, property
//! tests, windows); the linear-time detectors live in `rapid-hb` and
//! `rapid-wcp`.

use std::collections::HashMap;

use rapid_trace::analysis::TraceIndex;
use rapid_trace::{EventId, EventKind, LockId, Race, RaceKind, RaceReport, Trace, VarId};
use rapid_vc::ThreadId;

use crate::relation::Relation;

/// Which partial order to query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrderKind {
    /// Lamport's happens-before (Definition 1).
    Hb,
    /// Causally-precedes (Definition 2, Smaragdakis et al.).
    Cp,
    /// Weak-causally-precedes (Definition 3, this paper).
    Wcp,
}

/// One critical section over a lock: its acquire, its release (if any), the
/// owning thread, the last event it contains, and its read/write footprint.
#[derive(Debug, Clone)]
struct Section {
    acquire: usize,
    release: Option<usize>,
    last: usize,
    thread: ThreadId,
    reads: Vec<VarId>,
    writes: Vec<VarId>,
}

impl Section {
    /// True when this section contains an event conflicting with an access
    /// to `var` (`is_write` says whether that access is a write) performed by
    /// `thread`.
    fn conflicts_with_access(&self, thread: ThreadId, var: VarId, is_write: bool) -> bool {
        if self.thread == thread {
            return false;
        }
        self.writes.contains(&var) || (is_write && self.reads.contains(&var))
    }

    /// True when this section and `other` contain conflicting events.
    fn conflicts_with_section(&self, other: &Section) -> bool {
        if self.thread == other.thread {
            return false;
        }
        self.writes.iter().any(|var| other.writes.contains(var) || other.reads.contains(var))
            || self.reads.iter().any(|var| other.writes.contains(var))
    }
}

/// Exact ≤HB / ≤CP / ≤WCP oracle for one trace.
#[derive(Debug)]
pub struct ClosureEngine<'a> {
    trace: &'a Trace,
    hb: Relation,
    cp: Relation,
    wcp: Relation,
}

impl<'a> ClosureEngine<'a> {
    /// Builds the engine: computes the HB closure and saturates the CP and
    /// WCP rules to their least fixpoints.
    pub fn new(trace: &'a Trace) -> Self {
        let index = TraceIndex::build(trace);
        let hb = compute_hb(trace, &index);
        let sections = collect_sections(trace, &index);
        let cp = saturate(trace, &index, &hb, &sections, OrderKind::Cp);
        let wcp = saturate(trace, &index, &hb, &sections, OrderKind::Wcp);
        ClosureEngine { trace, hb, cp, wcp }
    }

    /// Is `a ≤ b` under the requested order?  (`≤CP`/`≤WCP` are the closures
    /// `≺ ∪ ≤TO` used for race checking; `a ≤ a` always holds.)
    pub fn ordered(&self, kind: OrderKind, a: EventId, b: EventId) -> bool {
        if a == b {
            return true;
        }
        let (a, b) = (a.index(), b.index());
        let thread_ordered = self.trace[a].thread() == self.trace[b].thread() && a < b;
        match kind {
            OrderKind::Hb => self.hb.contains(a, b),
            OrderKind::Cp => thread_ordered || self.cp.contains(a, b),
            OrderKind::Wcp => thread_ordered || self.wcp.contains(a, b),
        }
    }

    /// Are the two events unordered (in race position) under the order?
    pub fn unordered(&self, kind: OrderKind, a: EventId, b: EventId) -> bool {
        !self.ordered(kind, a, b) && !self.ordered(kind, b, a)
    }

    /// All races (conflicting, unordered pairs) under the requested order.
    pub fn races(&self, kind: OrderKind) -> RaceReport {
        let race_kind = match kind {
            OrderKind::Hb => RaceKind::Hb,
            OrderKind::Cp => RaceKind::Cp,
            OrderKind::Wcp => RaceKind::Wcp,
        };
        let mut report = RaceReport::new();
        for (first, second) in self.trace.conflicting_pairs() {
            if self.unordered(kind, first, second) {
                report.push(Race {
                    first,
                    second,
                    variable: self.trace[first].kind().variable().expect("access event"),
                    first_location: self.trace[first].location(),
                    second_location: self.trace[second].location(),
                    kind: race_kind,
                });
            }
        }
        report
    }

    /// The number of ordered pairs in the underlying ≺ relation (diagnostic).
    pub fn relation_size(&self, kind: OrderKind) -> usize {
        match kind {
            OrderKind::Hb => self.hb.len(),
            OrderKind::Cp => self.cp.len(),
            OrderKind::Wcp => self.wcp.len(),
        }
    }
}

/// Computes the reflexive-transitive ≤HB relation.
fn compute_hb(trace: &Trace, index: &TraceIndex) -> Relation {
    let n = trace.len();
    let mut hb = Relation::new(n);
    // Direct edges, all pointing forward in trace order.
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
    // (i) thread order.
    for event in trace.events() {
        if let Some(next) = index.next_in_thread(event.id()) {
            successors[event.id().index()].push(next.index());
        }
    }
    // (ii) release-to-later-acquire over the same lock.
    let mut acquires_per_lock: HashMap<LockId, Vec<usize>> = HashMap::new();
    for event in trace.events() {
        if let EventKind::Acquire(lock) = event.kind() {
            acquires_per_lock.entry(lock).or_default().push(event.id().index());
        }
    }
    for event in trace.events() {
        if let EventKind::Release(lock) = event.kind() {
            let release = event.id().index();
            if let Some(acquires) = acquires_per_lock.get(&lock) {
                for &acquire in acquires.iter().filter(|&&acquire| acquire > release) {
                    successors[release].push(acquire);
                }
            }
        }
    }
    // (iii) fork/join edges.
    let mut first_of_thread: HashMap<ThreadId, usize> = HashMap::new();
    let mut last_of_thread: HashMap<ThreadId, usize> = HashMap::new();
    for event in trace.events() {
        let i = event.id().index();
        first_of_thread.entry(event.thread()).or_insert(i);
        last_of_thread.insert(event.thread(), i);
    }
    for event in trace.events() {
        match event.kind() {
            EventKind::Fork(child) => {
                if let Some(&first) = first_of_thread.get(&child) {
                    if first > event.id().index() {
                        successors[event.id().index()].push(first);
                    }
                }
            }
            EventKind::Join(child) => {
                if let Some(&last) = last_of_thread.get(&child) {
                    if last < event.id().index() {
                        successors[last].push(event.id().index());
                    }
                }
            }
            _ => {}
        }
    }
    // Transitive closure: all edges point forward, so one reverse pass
    // suffices.  Rows are made reflexive as well.
    for i in (0..n).rev() {
        hb.insert(i, i);
        let succs = successors[i].clone();
        for succ in succs {
            hb.insert(i, succ);
            hb.union_row_into(succ, i);
        }
    }
    hb
}

/// Collects every critical section with its access footprint.
fn collect_sections(trace: &Trace, index: &TraceIndex) -> HashMap<LockId, Vec<Section>> {
    let mut sections: HashMap<LockId, Vec<Section>> = HashMap::new();
    for event in trace.events() {
        let EventKind::Acquire(lock) = event.kind() else { continue };
        let acquire = event.id();
        let release = index.matching_release(acquire);
        let events = index.section_events(trace, acquire);
        let last = events.last().copied().unwrap_or(acquire);
        sections.entry(lock).or_default().push(Section {
            acquire: acquire.index(),
            release: release.map(EventId::index),
            last: last.index(),
            thread: event.thread(),
            reads: index.section_reads(acquire).to_vec(),
            writes: index.section_writes(acquire).to_vec(),
        });
    }
    sections
}

/// Saturates the CP or WCP rules to a least fixpoint over the trace.
fn saturate(
    trace: &Trace,
    index: &TraceIndex,
    hb: &Relation,
    sections: &HashMap<LockId, Vec<Section>>,
    kind: OrderKind,
) -> Relation {
    let n = trace.len();
    let mut prec = Relation::new(n);

    // Rule (a) is independent of the relation being built; apply it once.
    match kind {
        OrderKind::Cp => {
            for lock_sections in sections.values() {
                for (i, earlier) in lock_sections.iter().enumerate() {
                    let Some(release) = earlier.release else { continue };
                    for later in &lock_sections[i + 1..] {
                        if release < later.acquire && earlier.conflicts_with_section(later) {
                            prec.insert(release, later.acquire);
                        }
                    }
                }
            }
        }
        OrderKind::Wcp => {
            for (lock, lock_sections) in sections {
                for section in lock_sections {
                    let Some(release) = section.release else { continue };
                    // Order the release before every later conflicting access
                    // that is itself inside a critical section over the lock.
                    for event in trace.events().iter().skip(release + 1) {
                        let Some(var) = event.kind().variable() else { continue };
                        if !index.inside_lock(trace, event.id(), *lock) {
                            continue;
                        }
                        if section.conflicts_with_access(
                            event.thread(),
                            var,
                            event.kind().is_write(),
                        ) {
                            prec.insert(release, event.id().index());
                        }
                    }
                }
            }
        }
        OrderKind::Hb => unreachable!("HB is computed directly, not saturated"),
    }

    // Saturate Rule (b) and Rule (c) until nothing changes.
    let mut changed = true;
    while changed {
        changed = false;

        // Rule (c): close under composition with HB on both sides.
        // `hb ∘ prec`: process rows in reverse so later rows are complete.
        for a in (0..n).rev() {
            let hb_successors: Vec<usize> = hb.row(a).filter(|&c| c != a).collect();
            for c in hb_successors {
                if prec.union_row_into(c, a) {
                    changed = true;
                }
            }
        }
        // `prec ∘ hb`: extend each row by the HB successors of its members.
        for a in 0..n {
            let members: Vec<usize> = prec.row(a).collect();
            for c in members {
                if prec.union_row_from(hb, c, a) {
                    changed = true;
                }
            }
        }

        // Rule (b): ordered critical sections over the same lock.
        for lock_sections in sections.values() {
            for (i, earlier) in lock_sections.iter().enumerate() {
                let Some(earlier_release) = earlier.release else { continue };
                for later in &lock_sections[i + 1..] {
                    // "Two events in two critical sections are WCP ordered iff
                    // the acquire of the first is ordered before the release
                    // (last event) of the second" (§3.2).
                    if !prec.contains(earlier.acquire, later.last) {
                        continue;
                    }
                    let added = match kind {
                        OrderKind::Cp => prec.insert(earlier_release, later.acquire),
                        OrderKind::Wcp => match later.release {
                            Some(later_release) => prec.insert(earlier_release, later_release),
                            None => false,
                        },
                        OrderKind::Hb => unreachable!(),
                    };
                    if added {
                        changed = true;
                    }
                }
            }
        }
    }
    prec
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_gen::figures;
    use rapid_gen::random::RandomTraceConfig;
    use rapid_trace::TraceBuilder;

    #[test]
    fn figure_expectations_hold_for_all_three_orders() {
        for figure in figures::paper_figures() {
            let engine = ClosureEngine::new(&figure.trace);
            assert_eq!(
                engine.unordered(OrderKind::Hb, figure.first, figure.second),
                figure.hb_race,
                "{}: HB",
                figure.name
            );
            assert_eq!(
                engine.unordered(OrderKind::Cp, figure.first, figure.second),
                figure.cp_race,
                "{}: CP",
                figure.name
            );
            assert_eq!(
                engine.unordered(OrderKind::Wcp, figure.first, figure.second),
                figure.wcp_race,
                "{}: WCP",
                figure.name
            );
        }
    }

    #[test]
    fn wcp_is_weaker_than_cp_which_is_weaker_than_hb() {
        // ≺WCP ⊆ ≺CP ⊆ ≤HB on every pair, checked on random traces.
        for seed in 0..5 {
            let config = RandomTraceConfig {
                seed,
                events: 120,
                threads: 3,
                locks: 2,
                variables: 4,
                ..RandomTraceConfig::default()
            };
            let trace = config.generate();
            let engine = ClosureEngine::new(&trace);
            for a in trace.events() {
                for b in trace.events() {
                    if a.id() == b.id() {
                        continue;
                    }
                    if engine.ordered(OrderKind::Wcp, a.id(), b.id()) {
                        assert!(
                            engine.ordered(OrderKind::Cp, a.id(), b.id()),
                            "seed {seed}: {} ≤WCP {} but not ≤CP",
                            a.id(),
                            b.id()
                        );
                    }
                    if engine.ordered(OrderKind::Cp, a.id(), b.id()) {
                        assert!(
                            engine.ordered(OrderKind::Hb, a.id(), b.id()),
                            "seed {seed}: {} ≤CP {} but not ≤HB",
                            a.id(),
                            b.id()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn hb_closure_orders_release_acquire_chains() {
        let mut b = TraceBuilder::new();
        let t1 = b.thread("t1");
        let t2 = b.thread("t2");
        let t3 = b.thread("t3");
        let l = b.lock("l");
        let m = b.lock("m");
        let x = b.variable("x");
        let first = b.write(t1, x);
        b.acrl(t1, l);
        b.acquire(t2, l);
        b.release(t2, l);
        b.acrl(t2, m);
        b.acquire(t3, m);
        b.release(t3, m);
        let second = b.write(t3, x);
        let trace = b.finish();
        let engine = ClosureEngine::new(&trace);
        assert!(engine.ordered(OrderKind::Hb, first, second), "chained HB through two locks");
        assert!(engine.races(OrderKind::Hb).is_empty());
    }

    #[test]
    fn race_reports_by_kind() {
        let figure = figures::figure_2b();
        let engine = ClosureEngine::new(&figure.trace);
        assert_eq!(engine.races(OrderKind::Hb).distinct_pairs(), 0);
        assert_eq!(engine.races(OrderKind::Cp).distinct_pairs(), 0);
        let wcp_races = engine.races(OrderKind::Wcp);
        assert_eq!(wcp_races.distinct_pairs(), 1);
        assert_eq!(wcp_races.races()[0].kind, RaceKind::Wcp);
    }

    #[test]
    fn relation_sizes_shrink_as_rules_weaken() {
        // WCP has at most as many orderings as CP (on top of thread order).
        for figure in figures::paper_figures() {
            let engine = ClosureEngine::new(&figure.trace);
            // Not a strict theorem statement about ≺ sizes, but on these
            // traces the WCP closure never exceeds the CP closure.
            assert!(
                engine.relation_size(OrderKind::Wcp) <= engine.relation_size(OrderKind::Cp),
                "{}",
                figure.name
            );
        }
    }

    #[test]
    fn fork_join_edges_enter_hb() {
        let mut b = TraceBuilder::new();
        let main = b.thread("main");
        let worker = b.thread("worker");
        let x = b.variable("x");
        let first = b.write(main, x);
        b.fork(main, worker);
        let second = b.write(worker, x);
        b.join(main, worker);
        let third = b.write(main, x);
        let trace = b.finish();
        let engine = ClosureEngine::new(&trace);
        assert!(engine.ordered(OrderKind::Hb, first, second));
        assert!(engine.ordered(OrderKind::Hb, second, third));
        assert!(engine.races(OrderKind::Hb).is_empty());
    }
}
