//! A dense boolean relation over event indices, backed by a bit matrix.

/// A binary relation over `{0, …, n-1}` stored as a row-major bit matrix.
///
/// Rows are bit sets: `contains(a, b)` tests bit `b` of row `a`.  The closure
/// engine uses word-level OR to compose relations efficiently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    size: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl Relation {
    /// Creates the empty relation over `size` elements.
    pub fn new(size: usize) -> Self {
        let words_per_row = size.div_ceil(64);
        Relation { size, words_per_row, bits: vec![0; words_per_row * size.max(1)] }
    }

    /// Number of elements in the carrier set.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Adds `(a, b)` to the relation.  Returns true when it was not present.
    pub fn insert(&mut self, a: usize, b: usize) -> bool {
        debug_assert!(a < self.size && b < self.size);
        let word = &mut self.bits[a * self.words_per_row + b / 64];
        let mask = 1u64 << (b % 64);
        let added = *word & mask == 0;
        *word |= mask;
        added
    }

    /// Tests whether `(a, b)` is in the relation.
    pub fn contains(&self, a: usize, b: usize) -> bool {
        if a >= self.size || b >= self.size {
            return false;
        }
        self.bits[a * self.words_per_row + b / 64] & (1 << (b % 64)) != 0
    }

    /// ORs row `source` into row `target`.  Returns true when `target` grew.
    pub fn union_row_into(&mut self, source: usize, target: usize) -> bool {
        if source == target {
            return false;
        }
        let mut changed = false;
        let (src_start, dst_start) = (source * self.words_per_row, target * self.words_per_row);
        for offset in 0..self.words_per_row {
            let value = self.bits[src_start + offset];
            let dst = &mut self.bits[dst_start + offset];
            if value & !*dst != 0 {
                changed = true;
                *dst |= value;
            }
        }
        changed
    }

    /// ORs row `source` of `other` into row `target` of `self`.  Returns true
    /// when `target` grew.  `other` must have the same carrier size.
    pub fn union_row_from(&mut self, other: &Relation, source: usize, target: usize) -> bool {
        debug_assert_eq!(self.size, other.size);
        let mut changed = false;
        let src_start = source * other.words_per_row;
        let dst_start = target * self.words_per_row;
        for offset in 0..self.words_per_row {
            let value = other.bits[src_start + offset];
            let dst = &mut self.bits[dst_start + offset];
            if value & !*dst != 0 {
                changed = true;
                *dst |= value;
            }
        }
        changed
    }

    /// Iterates over the elements of row `a` (the successors of `a`).
    pub fn row(&self, a: usize) -> impl Iterator<Item = usize> + '_ {
        let start = a * self.words_per_row;
        (0..self.words_per_row).flat_map(move |offset| {
            let mut word = self.bits[start + offset];
            let base = offset * 64;
            std::iter::from_fn(move || {
                if word == 0 {
                    None
                } else {
                    let bit = word.trailing_zeros() as usize;
                    word &= word - 1;
                    Some(base + bit)
                }
            })
        })
    }

    /// Number of pairs in the relation.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|word| word.count_ones() as usize).sum()
    }

    /// Returns true when the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&word| word == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut relation = Relation::new(130);
        assert!(relation.is_empty());
        assert!(relation.insert(0, 129));
        assert!(!relation.insert(0, 129), "second insert reports no change");
        assert!(relation.contains(0, 129));
        assert!(!relation.contains(129, 0));
        assert_eq!(relation.len(), 1);
        assert_eq!(relation.size(), 130);
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let relation = Relation::new(4);
        assert!(!relation.contains(10, 0));
        assert!(!relation.contains(0, 10));
    }

    #[test]
    fn union_row_into_merges_successors() {
        let mut relation = Relation::new(8);
        relation.insert(1, 2);
        relation.insert(1, 7);
        assert!(relation.union_row_into(1, 0));
        assert!(relation.contains(0, 2) && relation.contains(0, 7));
        assert!(!relation.union_row_into(1, 0), "no growth the second time");
        assert!(!relation.union_row_into(3, 3), "self union is a no-op");
    }

    #[test]
    fn union_row_from_other_relation() {
        let mut hb = Relation::new(8);
        hb.insert(2, 5);
        let mut prec = Relation::new(8);
        assert!(prec.union_row_from(&hb, 2, 0));
        assert!(prec.contains(0, 5));
    }

    #[test]
    fn row_iterates_set_bits_in_order() {
        let mut relation = Relation::new(70);
        relation.insert(3, 65);
        relation.insert(3, 1);
        relation.insert(3, 64);
        let row: Vec<usize> = relation.row(3).collect();
        assert_eq!(row, vec![1, 64, 65]);
        assert_eq!(relation.row(4).count(), 0);
    }
}
