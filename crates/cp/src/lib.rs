//! Causally-Precedes (CP) baseline and reference partial-order closures.
//!
//! CP (Smaragdakis et al., POPL 2012, "Sound Predictive Race Detection in
//! Polynomial Time") is the relation WCP weakens.  The paper compares against
//! CP analytically (Figures 2–5) rather than experimentally, because CP has
//! no known linear-time algorithm and published implementations must window
//! the trace.  This crate provides:
//!
//! * [`closure`] — a reference *closure engine* that computes ≤HB, ≤CP and
//!   ≤WCP exactly by saturating the paper's rules over an explicit relation
//!   matrix.  It is polynomial (cubic in the worst case) and intended for
//!   small traces: cross-checking the linear-time WCP vector-clock detector
//!   (Theorem 2), deciding the figures' claims, and powering the CP baseline.
//! * [`detector`] — [`CpDetector`], a CP race detector that either analyzes
//!   the whole trace (small inputs) or, like published CP implementations,
//!   splits it into bounded windows.
//!
//! # Examples
//!
//! ```
//! use rapid_cp::closure::{ClosureEngine, OrderKind};
//! use rapid_gen::figures;
//!
//! // Figure 2b: CP orders the focal pair (no CP-race), WCP does not.
//! let figure = figures::figure_2b();
//! let engine = ClosureEngine::new(&figure.trace);
//! assert!(engine.ordered(OrderKind::Cp, figure.first, figure.second));
//! assert!(!engine.ordered(OrderKind::Wcp, figure.first, figure.second));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod closure;
pub mod detector;
pub mod relation;

pub use closure::{ClosureEngine, OrderKind};
pub use detector::CpDetector;
pub use relation::Relation;
