//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so this proc-macro crate
//! provides `#[derive(Serialize)]` / `#[derive(Deserialize)]` entry points
//! that expand to nothing.  Types annotated with the derives compile
//! unchanged; actual (de)serialization is not implemented because nothing in
//! the workspace exercises it yet.  Swapping in the real `serde` later only
//! requires changing the path dependencies back to registry versions.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
