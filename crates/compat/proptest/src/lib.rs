//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate implements the
//! slice of proptest's API the workspace's property suites use:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//!   `prop_filter` and `prop_flat_map`, implemented for integer/float ranges,
//!   tuples and [`Just`](strategy::Just);
//! * [`collection::vec`] and [`strategy::Union`] (behind [`prop_oneof!`]);
//! * the [`proptest!`] macro with optional `#![proptest_config(..)]` header,
//!   plus [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assert_ne!`];
//! * [`test_runner::ProptestConfig`] (only `cases` is honoured).
//!
//! Semantics differ from real proptest in two deliberate ways: generation is
//! purely random (no shrinking — a failing case reports its sampled inputs
//! but is not minimized) and the RNG is seeded deterministically from the
//! test name, so every run explores the same cases.  Both keep the suites
//! reproducible, which is the property the workspace's tests rely on.

#![forbid(unsafe_code)]

/// Test-case configuration and failure plumbing.
pub mod test_runner {
    /// Stand-in for `proptest::test_runner::Config` (a.k.a. `ProptestConfig`).
    ///
    /// Only `cases` is honoured; the other fields exist so that struct-update
    /// syntax against `ProptestConfig::default()` compiles unchanged.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; local-rejection limits are not
        /// enforced (filters retry up to a fixed internal bound).
        pub max_local_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_shrink_iters: 0, max_local_rejects: 65_536 }
        }
    }

    impl ProptestConfig {
        /// Config with the given number of cases and defaults elsewhere.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases, ..ProptestConfig::default() }
        }
    }

    /// Failure raised by `prop_assert!` and friends inside a property body.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure carrying `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError { message: message.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic RNG driving case generation.
    ///
    /// Like real proptest, generation is delegated to the `rand` crate (here
    /// the workspace's offline stand-in) rather than re-implementing a
    /// generator locally.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: rand::rngs::StdRng,
    }

    impl TestRng {
        /// Creates an RNG from an explicit seed.
        pub fn deterministic(seed: u64) -> Self {
            use rand::SeedableRng;
            TestRng { inner: rand::rngs::StdRng::seed_from_u64(seed ^ 0x5DEE_CE66_D1CE_F00D) }
        }

        /// Creates an RNG whose seed is derived from a test name, so each
        /// property explores its own (stable) sequence of cases.
        pub fn for_test_name(name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng::deterministic(hash)
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            use rand::RngCore;
            self.inner.next_u64()
        }

        /// Returns a uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            use rand::Rng;
            self.inner.gen::<f64>()
        }

        /// Returns a uniform `u64` in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            use rand::Rng;
            self.inner.gen_range(0..bound)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of one type (stand-in for
    /// `proptest::strategy::Strategy`; sampling replaces value trees, and
    /// there is no shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from `rng`.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `map`.
        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, map }
        }

        /// Discards generated values failing `filter` (retries up to an
        /// internal bound, then panics — mirroring proptest giving up on a
        /// too-strict filter).
        fn prop_filter<F>(self, whence: &'static str, filter: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, whence, filter }
        }

        /// Chains a dependent strategy derived from each generated value.
        fn prop_flat_map<O, F>(self, map: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            O: Strategy,
            F: Fn(Self::Value) -> O,
        {
            FlatMap { inner: self, map }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.map)(self.inner.sample(rng))
        }
    }

    /// Output of [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        filter: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let value = self.inner.sample(rng);
                if (self.filter)(&value) {
                    return value;
                }
            }
            panic!("prop_filter rejected 10000 consecutive values: {}", self.whence);
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        map: F,
    }

    impl<S, O, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        O: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O::Value;
        fn sample(&self, rng: &mut TestRng) -> O::Value {
            (self.map)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice between same-typed strategies (behind [`prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! requires at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let index = rng.below(self.options.len() as u64) as usize;
            self.options[index].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty as $wide:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as $wide - self.start as $wide) as u64;
                    (self.start as $wide + rng.below(span) as $wide) as $t
                }
            }
        )+};
    }

    signed_range_strategy!(i8 as i64, i16 as i64, i32 as i64, i64 as i128, isize as i128);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($S:ident . $idx:tt),+))+) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    }
}

/// Strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "cannot sample empty length range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test module normally imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // The stringified condition goes through a `{}` placeholder, never
        // straight into a format string: source text containing braces
        // (closures, blocks) must not be parsed as format captures.
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Fails the current property case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, $($fmt)+);
    }};
}

/// Uniform choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<$crate::strategy::BoxedStrategy<_>> =
            vec![$(::std::boxed::Box::new($strategy)),+];
        $crate::strategy::Union::new(options)
    }};
}

/// Declares property tests (stand-in for `proptest::proptest!`).
///
/// Supports the subset of the real macro's grammar the workspace uses: an
/// optional `#![proptest_config(expr)]` header followed by `#[test]`
/// functions whose arguments are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test_name(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                // Record the sampled inputs before handing them to the body,
                // so failures (and panics) can report which case broke.
                let mut inputs = ::std::string::String::new();
                $(
                    let sampled = $crate::strategy::Strategy::sample(&($strategy), &mut rng);
                    inputs.push_str(&format!("{} = {:?}; ", stringify!($arg), &sampled));
                    let $arg = sampled;
                )+
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    },
                ));
                match outcome {
                    ::core::result::Result::Ok(::core::result::Result::Ok(())) => {}
                    ::core::result::Result::Ok(::core::result::Result::Err(error)) => {
                        panic!(
                            "proptest property {} failed at case {}/{} with inputs [{}]: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            inputs.trim_end_matches("; "),
                            error
                        );
                    }
                    ::core::result::Result::Err(payload) => {
                        eprintln!(
                            "proptest property {} panicked at case {}/{} with inputs [{}]",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            inputs.trim_end_matches("; ")
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic(1);
        for _ in 0..1_000 {
            let v = (5u64..9).sample(&mut rng);
            assert!((5..9).contains(&v));
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = crate::test_runner::TestRng::deterministic(2);
        let strategy = prop::collection::vec(0u8..10, 3..7);
        for _ in 0..200 {
            let v = strategy.sample(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn union_draws_from_every_arm() {
        let mut rng = crate::test_runner::TestRng::deterministic(3);
        let strategy = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strategy.sample(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn macro_binds_multiple_strategies(a in 0u32..10, b in 10u32..20) {
            prop_assert!(a < 10);
            prop_assert!((10..20).contains(&b));
            prop_assert_ne!(a, b);
        }

        #[test]
        fn map_and_filter_compose(v in (0u64..100).prop_map(|x| x * 2) ) {
            prop_assert_eq!(v % 2, 0);
            prop_assert!(v < 200);
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(x in 0u8..5) {
            prop_assert!(x < 5);
        }
    }
}
