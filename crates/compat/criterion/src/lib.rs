//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment cannot reach crates.io, so this crate implements the
//! slice of criterion's API the workspace's benches use: [`Criterion`],
//! benchmark groups with `sample_size` / `throughput` / `bench_function` /
//! `bench_with_input`, [`BenchmarkId`], [`Throughput`], [`Bencher::iter`] and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up once and
//! then timed for `sample_size` samples of one iteration each; the mean,
//! minimum and maximum are printed.  `cargo bench -- --test` runs each
//! benchmark exactly once without timing, mirroring criterion's smoke-test
//! mode.  No statistics files are written.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's traditional name.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Units in which a benchmark's workload size is expressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark name of the form `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id combining a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to every benchmark closure.
pub struct Bencher {
    test_mode: bool,
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, running it once per sample (or exactly once in
    /// `--test` mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            std_black_box(routine());
            return;
        }
        // One untimed warmup to populate caches and allocators.
        std_black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            std_black_box(routine());
            self.timings.push(start.elapsed());
        }
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|arg| arg == "--test");
        Criterion { test_mode, sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            throughput: None,
            _criterion: std::marker::PhantomData,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_one(&id.to_string(), self.test_mode, self.sample_size, None, &mut f);
    }
}

/// A group of benchmarks sharing settings (mirrors criterion's type).
pub struct BenchmarkGroup<'a> {
    name: String,
    test_mode: bool,
    sample_size: usize,
    throughput: Option<Throughput>,
    // Tie the group's lifetime to the `Criterion` it came from, as the real
    // API does, so call sites migrate cleanly to real criterion later.
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Declares the workload size of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.test_mode, self.sample_size, self.throughput, &mut f);
    }

    /// Runs one benchmark that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.test_mode, self.sample_size, self.throughput, &mut |b| f(b, input));
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

fn run_one(
    label: &str,
    test_mode: bool,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher { test_mode, samples, timings: Vec::new() };
    f(&mut bencher);
    if test_mode {
        println!("test {label} ... ok");
        return;
    }
    if bencher.timings.is_empty() {
        println!("bench {label}: no measurements (routine never called iter)");
        return;
    }
    let total: Duration = bencher.timings.iter().sum();
    let mean = total / bencher.timings.len() as u32;
    let min = bencher.timings.iter().min().expect("non-empty");
    let max = bencher.timings.iter().max().expect("non-empty");
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean.as_secs_f64() > 0.0 => {
            format!("  ({:.2} Melem/s)", n as f64 / mean.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) if mean.as_secs_f64() > 0.0 => {
            format!("  ({:.2} MiB/s)", n as f64 / mean.as_secs_f64() / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!(
        "bench {label}: mean {mean:?}  min {min:?}  max {max:?}  ({} samples){rate}",
        bencher.timings.len()
    );
}

/// Bundles benchmark functions into one group runner (mirrors criterion).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a bench target with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_every_benchmark() {
        let mut criterion = Criterion { test_mode: true, sample_size: 3 };
        let mut runs = 0;
        {
            let mut group = criterion.benchmark_group("g");
            group.sample_size(5).throughput(Throughput::Elements(10));
            group.bench_function("a", |b| b.iter(|| runs += 1));
            group.finish();
        }
        assert_eq!(runs, 1, "--test mode runs the routine exactly once");
    }

    #[test]
    fn timed_mode_collects_sample_size_samples() {
        let mut criterion = Criterion { test_mode: false, sample_size: 4 };
        let mut runs = 0u32;
        let mut group = criterion.benchmark_group("g");
        group.sample_size(4);
        group.bench_with_input(BenchmarkId::new("b", 1), &3u32, |b, &x| {
            b.iter(|| {
                runs += x;
            })
        });
        group.finish();
        // One warmup + four timed samples.
        assert_eq!(runs, 15);
    }

    #[test]
    fn benchmark_id_formats_as_function_slash_parameter() {
        assert_eq!(BenchmarkId::new("wcp", 4096).to_string(), "wcp/4096");
    }
}
