//! Offline stand-in for the `rand` crate (0.8-era API surface).
//!
//! The build environment cannot reach crates.io, so this crate implements the
//! slice of `rand` the workspace actually uses — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`] and
//! [`Rng::gen_bool`] — on top of a self-contained xoshiro256++ generator
//! seeded through SplitMix64.
//!
//! Determinism is the only contract the workspace relies on: identical seeds
//! must produce identical streams across runs and platforms.  The stream is
//! *not* the same as the real `rand`'s `StdRng` (which is ChaCha-based), and
//! no cryptographic properties are claimed.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of generators from seeds (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's native stream
/// (the stand-in for sampling from `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Assumes 64-bit targets (the only ones this workspace builds for):
        // on a 32-bit target this truncation would make the same seed yield a
        // different stream than on a 64-bit host.
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1), the standard double conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly (mirrors `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Modulo reduction: negligible bias for the spans used here
                // and, crucially, deterministic.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )+};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing sampling methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the native stream.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// ChaCha-based `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { state: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn identical_seeds_yield_identical_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..10).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 10);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_f64_is_a_unit_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits} hits for p=0.25");
    }
}
