//! Offline stand-in for `memmap2`.
//!
//! The build environment cannot reach crates.io, so this crate supplies the
//! one API slice the workspace uses: a *read-only* [`Mmap`] over a [`File`],
//! dereferencing to `&[u8]`.  On unix targets the mapping is a real
//! `mmap(2)` (declared directly against the C library `std` already links;
//! no `libc` crate needed), so large trace files are paged in lazily and
//! never copied.  Anywhere the syscall is unavailable or fails — other
//! platforms, pipes, zero-length files (POSIX forbids zero-length maps) —
//! [`Mmap::map`] transparently falls back to reading the file into an owned
//! `Vec<u8>`, preserving behaviour at the cost of one copy.
//!
//! Deviation from the real `memmap2`: there `Mmap::map` is `unsafe fn`
//! (mutating the file while mapped is UB).  This stand-in exposes a *safe*
//! constructor so that downstream crates can keep `#![forbid(unsafe_code)]`;
//! the soundness caveat — do not truncate or rewrite a file while a map of
//! it is live — is carried here in the docs instead of the signature.
//! Swapping the real crate back in means re-wrapping the call site in
//! `unsafe { .. }` and nothing else.

use std::fs::File;
use std::io::{self, Read};
use std::ops::Deref;

#[cfg(unix)]
mod sys {
    use std::fs::File;
    use std::io;
    use std::os::fd::AsRawFd;
    use std::os::raw::{c_int, c_void};

    // Prototypes for the two calls we need, resolved against the platform C
    // library that std already links.  Constants per POSIX (identical on
    // Linux and macOS for these flags).
    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;
    const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    /// A live read-only, private mapping; unmapped on drop.
    #[derive(Debug)]
    pub struct Mapping {
        ptr: *mut c_void,
        len: usize,
    }

    // The mapping is read-only and owned: sharing a `&Mapping` across
    // threads only ever reads the mapped pages.
    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    impl Mapping {
        /// Maps `len` bytes of `file` read-only, or returns the OS error.
        pub fn map(file: &File, len: usize) -> io::Result<Mapping> {
            if len == 0 {
                // POSIX rejects zero-length mappings; the caller falls back.
                return Err(io::Error::from(io::ErrorKind::InvalidInput));
            }
            // SAFETY: we request a fresh private read-only mapping (addr
            // null, PROT_READ | MAP_PRIVATE) over a file descriptor we hold
            // open, and check the result against MAP_FAILED before use.
            let ptr = unsafe {
                mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0)
            };
            if ptr == MAP_FAILED {
                return Err(io::Error::last_os_error());
            }
            Ok(Mapping { ptr, len })
        }

        /// The mapped bytes.
        pub fn as_slice(&self) -> &[u8] {
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes, valid until `drop` unmaps it.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` describe the mapping created in `map` and
            // are unmapped exactly once.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

/// A read-only memory map of a file (or, on fallback, its owned contents).
#[derive(Debug)]
pub struct Mmap(Repr);

#[derive(Debug)]
enum Repr {
    #[cfg(unix)]
    Mapped(sys::Mapping),
    Owned(Vec<u8>),
}

impl Mmap {
    /// Maps `file` read-only.  Falls back to reading the whole file into
    /// memory when the platform or the file cannot be mapped (non-unix
    /// targets, pipes, empty files), so this never fails for a readable
    /// file.
    ///
    /// Do not truncate or rewrite the file while the returned map is alive.
    pub fn map(file: &File) -> io::Result<Mmap> {
        #[cfg(unix)]
        {
            if let Ok(metadata) = file.metadata() {
                let len = metadata.len();
                if metadata.is_file() && len > 0 && len <= usize::MAX as u64 {
                    if let Ok(mapping) = sys::Mapping::map(file, len as usize) {
                        return Ok(Mmap(Repr::Mapped(mapping)));
                    }
                }
            }
        }
        let mut contents = Vec::new();
        let mut file = file;
        file.read_to_end(&mut contents)?;
        Ok(Mmap(Repr::Owned(contents)))
    }

    /// Wraps an in-memory buffer in the `Mmap` interface (no file involved).
    /// Not part of the real `memmap2` API; used by tests and by readers that
    /// accept both mapped files and owned byte buffers.
    pub fn from_vec(contents: Vec<u8>) -> Mmap {
        Mmap(Repr::Owned(contents))
    }

    /// Whether the bytes come from a real `mmap(2)` (false: owned fallback).
    pub fn is_mapped(&self) -> bool {
        match &self.0 {
            #[cfg(unix)]
            Repr::Mapped(_) => true,
            Repr::Owned(_) => false,
        }
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.0 {
            #[cfg(unix)]
            Repr::Mapped(mapping) => mapping.as_slice(),
            Repr::Owned(contents) => contents,
        }
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("memmap2-compat-{}-{name}", std::process::id()))
    }

    #[test]
    fn maps_a_real_file() {
        let path = temp_path("basic");
        let contents = b"t1|w(x)|A:1\nt2|r(x)|B:2\n".repeat(512);
        std::fs::write(&path, &contents).unwrap();
        let file = File::open(&path).unwrap();
        let map = Mmap::map(&file).unwrap();
        assert_eq!(&map[..], &contents[..]);
        assert_eq!(map.as_ref().len(), contents.len());
        #[cfg(unix)]
        assert!(map.is_mapped(), "a regular non-empty file should really map");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_falls_back_to_owned() {
        let path = temp_path("empty");
        File::create(&path).unwrap().flush().unwrap();
        let file = File::open(&path).unwrap();
        let map = Mmap::map(&file).unwrap();
        assert!(map.is_empty());
        assert!(!map.is_mapped(), "zero-length maps are not attempted");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn from_vec_wraps_owned_bytes() {
        let map = Mmap::from_vec(vec![1, 2, 3]);
        assert_eq!(&map[..], &[1, 2, 3]);
        assert!(!map.is_mapped());
    }

    #[test]
    fn mapped_bytes_survive_many_reads() {
        let path = temp_path("reread");
        let contents: Vec<u8> = (0..=255u8).cycle().take(64 * 1024).collect();
        std::fs::write(&path, &contents).unwrap();
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        for (index, &byte) in map.iter().enumerate() {
            assert_eq!(byte, contents[index]);
        }
        std::fs::remove_file(&path).ok();
    }
}
