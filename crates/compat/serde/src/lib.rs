//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this crate supplies just
//! enough of serde's surface for the workspace to compile: the `Serialize`
//! and `Deserialize` trait names and the derive macros (which expand to
//! nothing — see `serde_derive`).  No serialization machinery is provided;
//! nothing in the workspace performs actual (de)serialization yet.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in this stand-in).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in this stand-in).
pub trait Deserialize<'de>: Sized {}
