//! Materializing generated traces as files, in any of the trace encodings.
//!
//! The generators in this crate produce in-memory [`Trace`]s; benchmarks and
//! fixtures need them on disk — std text for human-auditable cases, the
//! binary wire format (`.rwf`, see `docs/FORMAT.md`) for the zero-copy
//! ingestion path.  These helpers are the one place that decision is made,
//! so harnesses (`table1 --bench-smoke`, the ingestion bench, CI smoke
//! steps) emit every encoding the same way.

use std::io;
use std::path::Path;

use rapid_trace::format;
use rapid_trace::Trace;

/// Writes `trace` to `path`, choosing the encoding by extension: `.rwf` is
/// the binary wire format, `.csv` is CSV, anything else is std text.
///
/// # Errors
///
/// Propagates file-creation and write errors.
///
/// # Examples
///
/// ```no_run
/// use rapid_gen::{benchmarks, emit};
///
/// let model = benchmarks::benchmark("account").unwrap();
/// emit::write_trace_file(&model.trace, "account.rwf").unwrap();
/// emit::write_trace_file(&model.trace, "account.std").unwrap();
/// ```
pub fn write_trace_file(trace: &Trace, path: impl AsRef<Path>) -> io::Result<()> {
    // The extension→encoding rule lives in `rapid_trace::format` (shared
    // with `engine convert`); this is the generator-facing name for it.
    format::write_trace_file(trace, path)
}

/// Serializes `trace` into binary wire-format bytes (shorthand re-export of
/// [`rapid_trace::format::to_rwf_bytes`], so generator call sites need no
/// extra import).
pub fn rwf_bytes(trace: &Trace) -> Vec<u8> {
    format::to_rwf_bytes(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn every_extension_round_trips_the_account_model() {
        let model = benchmarks::benchmark("account").expect("known benchmark");
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        for name in [format!("gen-emit-{pid}.std"), format!("gen-emit-{pid}.rwf")] {
            let path = dir.join(&name);
            write_trace_file(&model.trace, &path).unwrap();
            let reader = format::AnyReader::open(&path, format::TextFormat::Std, true)
                .expect("emitted file opens");
            let roundtrip = format::collect_any(reader).expect("emitted file parses");
            assert_eq!(roundtrip.len(), model.trace.len(), "{name}");
            assert_eq!(
                format::write_std(&roundtrip),
                format::write_std(&model.trace),
                "{name} drifts from the model"
            );
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn rwf_bytes_matches_the_format_crate() {
        let model = benchmarks::benchmark("account").expect("known benchmark");
        assert_eq!(rwf_bytes(&model.trace), format::to_rwf_bytes(&model.trace));
        assert!(format::looks_binary(&rwf_bytes(&model.trace)));
    }
}
