//! Synthetic workload and trace generators for `rapid-rs`.
//!
//! The paper evaluates RAPID on traces logged from 18 Java benchmark programs
//! with RVPredict's logger.  Neither the JVM benchmarks nor the logger are
//! available to this reproduction, so this crate generates traces whose
//! *structure* exercises the same detector code paths:
//!
//! * [`figures`] — exact encodings of the example traces in Figures 1–6 of
//!   the paper (used to check HB/CP/WCP behaviour claim by claim).
//! * [`lower_bound`] — the parameterized Figure 8 family used in the linear
//!   space lower-bound proof (Theorem 4): the two `w(z)` events are WCP
//!   ordered iff the two embedded bit strings are equal.
//! * [`random`] — a seeded random trace generator with tunable thread, lock,
//!   variable and event counts plus lock-discipline knobs.
//! * [`benchmarks`] — deterministic models of the 18 benchmark programs of
//!   Table 1 (scaled-down event counts, matching thread/lock profiles,
//!   embedded racy and non-racy sharing patterns, including far-apart races).
//! * [`emit`] — writing generated traces to disk in any trace encoding
//!   (std text, CSV, or the binary `.rwf` wire format), extension-driven.
//!
//! # Examples
//!
//! ```
//! use rapid_gen::figures;
//!
//! let figure = figures::figure_2b();
//! assert!(figure.trace.validate().is_ok());
//! assert!(figure.predictable_race);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmarks;
pub mod emit;
pub mod figures;
pub mod lower_bound;
pub mod random;

pub use benchmarks::{benchmark, benchmark_names, BenchmarkModel, BenchmarkSpec};
pub use figures::{paper_figures, Figure};
pub use lower_bound::lower_bound_trace;
pub use random::{RandomTraceConfig, RandomTraceGenerator};
