//! Seeded random trace generation.
//!
//! The generator produces *valid* traces (lock semantics and well-nestedness
//! hold by construction) with a configurable mix of reads, writes and
//! critical sections.  It is used by property tests (detector invariants must
//! hold on arbitrary traces) and by the scaling benchmarks (Theorem 3 sweeps
//! over `N`, `T` and `L`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rapid_trace::{LockId, Trace, TraceBuilder, VarId};

/// Tunable parameters of the random trace generator.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomTraceConfig {
    /// Number of threads.
    pub threads: usize,
    /// Number of locks.
    pub locks: usize,
    /// Number of shared variables.
    pub variables: usize,
    /// Target number of events (the generated trace may exceed it slightly in
    /// order to close open critical sections).
    pub events: usize,
    /// Probability that a generated action is a lock acquire (opening a
    /// critical section); releases are generated automatically.
    pub acquire_probability: f64,
    /// Probability that a generated access is a write (vs a read).
    pub write_probability: f64,
    /// Probability that an access targets a variable "protected" by the
    /// thread's currently held lock set (making it race-free by discipline);
    /// the remainder target arbitrary variables and may race.
    pub disciplined_probability: f64,
    /// Maximum lock nesting depth per thread.
    pub max_nesting: usize,
    /// RNG seed — identical configs generate identical traces.
    pub seed: u64,
}

impl Default for RandomTraceConfig {
    fn default() -> Self {
        RandomTraceConfig {
            threads: 4,
            locks: 3,
            variables: 8,
            events: 1_000,
            acquire_probability: 0.15,
            write_probability: 0.4,
            disciplined_probability: 0.7,
            max_nesting: 3,
            seed: 0xC0FFEE,
        }
    }
}

impl RandomTraceConfig {
    /// Convenience constructor for a config with the given size and seed and
    /// default probabilities.
    pub fn sized(threads: usize, locks: usize, variables: usize, events: usize, seed: u64) -> Self {
        RandomTraceConfig {
            threads,
            locks,
            variables,
            events,
            seed,
            ..RandomTraceConfig::default()
        }
    }

    /// Generates the trace described by this configuration.
    pub fn generate(&self) -> Trace {
        RandomTraceGenerator::new(self.clone()).generate()
    }
}

/// The generator itself; normally used through [`RandomTraceConfig::generate`].
#[derive(Debug)]
pub struct RandomTraceGenerator {
    config: RandomTraceConfig,
    rng: StdRng,
}

impl RandomTraceGenerator {
    /// Creates a generator for `config`.
    pub fn new(config: RandomTraceConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        RandomTraceGenerator { config, rng }
    }

    /// Generates one trace in `O(events)` time.
    pub fn generate(&mut self) -> Trace {
        let config = self.config.clone();
        let threads = config.threads.max(1);
        let variables = config.variables.max(1);

        let mut builder = TraceBuilder::new();
        let thread_ids = builder.threads(threads);
        let lock_ids: Vec<LockId> =
            if config.locks > 0 { builder.locks(config.locks) } else { Vec::new() };
        let var_ids: Vec<VarId> = builder.variables(variables);

        // Per-thread stack of held locks and a global holder table, so that
        // lock semantics hold by construction.
        let mut held: Vec<Vec<LockId>> = vec![Vec::new(); threads];
        let mut holder: Vec<Option<usize>> = vec![None; lock_ids.len()];

        while builder.len() < config.events {
            let t = self.rng.gen_range(0..threads);
            let thread = thread_ids[t];
            let roll: f64 = self.rng.gen();

            // Possibly release the innermost lock.
            if !held[t].is_empty() && roll < 0.5 * config.acquire_probability {
                let lock = held[t].pop().expect("non-empty stack");
                holder[lock.index()] = None;
                builder.release(thread, lock);
                continue;
            }

            // Possibly open a new critical section.
            if roll < config.acquire_probability
                && held[t].len() < config.max_nesting
                && !lock_ids.is_empty()
            {
                let lock = lock_ids[self.rng.gen_range(0..lock_ids.len())];
                if holder[lock.index()].is_none() {
                    holder[lock.index()] = Some(t);
                    held[t].push(lock);
                    builder.acquire(thread, lock);
                    continue;
                }
                // Lock busy: fall through to an access instead of spinning.
            }

            // Otherwise perform an access.
            let disciplined = self.rng.gen::<f64>() < config.disciplined_probability;
            let var = if disciplined && !held[t].is_empty() {
                // Deterministically associate a variable with the innermost
                // held lock so accesses under the same lock are consistently
                // protected (race-free by locking discipline).
                let lock = held[t][held[t].len() - 1];
                var_ids[lock.index() % var_ids.len()]
            } else {
                var_ids[self.rng.gen_range(0..var_ids.len())]
            };
            if self.rng.gen::<f64>() < config.write_probability {
                builder.write(thread, var);
            } else {
                builder.read(thread, var);
            }
        }

        // Close every open critical section so the workload ends cleanly.
        for (t, stack) in held.iter_mut().enumerate() {
            while let Some(lock) = stack.pop() {
                holder[lock.index()] = None;
                builder.release(thread_ids[t], lock);
            }
        }

        builder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_traces_are_valid() {
        for seed in 0..5 {
            let config = RandomTraceConfig { seed, events: 500, ..RandomTraceConfig::default() };
            let trace = config.generate();
            assert!(trace.validate().is_ok(), "seed {seed} generated an invalid trace");
            assert!(trace.len() >= 500);
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let config = RandomTraceConfig { seed: 42, events: 300, ..RandomTraceConfig::default() };
        let a = config.generate();
        let b = config.generate();
        assert_eq!(a, b);
        let other = RandomTraceConfig { seed: 43, events: 300, ..RandomTraceConfig::default() };
        assert_ne!(a, other.generate());
    }

    #[test]
    fn respects_thread_and_variable_budgets() {
        let config = RandomTraceConfig::sized(3, 2, 5, 400, 7);
        let trace = config.generate();
        let stats = trace.stats();
        assert!(stats.threads <= 3);
        assert!(stats.locks <= 2);
        assert!(stats.variables <= 5);
    }

    #[test]
    fn zero_locks_still_generates_accesses() {
        let config = RandomTraceConfig {
            locks: 0,
            acquire_probability: 0.0,
            events: 100,
            ..RandomTraceConfig::default()
        };
        let trace = config.generate();
        assert!(trace.validate().is_ok());
        assert_eq!(trace.stats().acquires, 0);
        assert_eq!(trace.stats().accesses(), trace.len());
    }

    #[test]
    fn sized_constructor_sets_fields() {
        let config = RandomTraceConfig::sized(7, 9, 11, 13, 15);
        assert_eq!(config.threads, 7);
        assert_eq!(config.locks, 9);
        assert_eq!(config.variables, 11);
        assert_eq!(config.events, 13);
        assert_eq!(config.seed, 15);
    }

    #[test]
    fn large_traces_generate_quickly_and_validly() {
        let config = RandomTraceConfig::sized(8, 10, 64, 50_000, 3);
        let trace = config.generate();
        assert!(trace.validate().is_ok());
        assert!(trace.len() >= 50_000);
    }
}
