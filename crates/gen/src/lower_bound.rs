//! The Figure 8 lower-bound trace family (Theorem 4).
//!
//! The paper's linear-space lower bound reduces equality of two `n`-bit
//! strings `u`, `v` to WCP race detection: it constructs a trace in which two
//! `w(z)` events are WCP-ordered *iff* `u = v`.  The construction is a
//! parameterized and extended version of the Figure 6 trace: thread `t1`
//! walks through critical sections over locks `b_i = ℓ_{u_i}`, thread `t2`
//! threads them together with critical sections over a distinguished lock
//! `m`, handing ordering across via `acrl(y)` ping-pongs, and thread `t3`
//! replays the same pattern with locks `c_i = ℓ_{v_i}`.  The chain of
//! Rule (a)/(b) edges survives end to end exactly when every `b_i = c_i`.

use rapid_trace::{EventId, Trace, TraceBuilder};

/// The generated lower-bound trace plus the two `w(z)` events whose WCP
/// ordering encodes string equality.
#[derive(Debug, Clone)]
pub struct LowerBoundTrace {
    /// The trace itself.
    pub trace: Trace,
    /// The `w(z)` event of the first phase (thread `t2`).
    pub first_write_z: EventId,
    /// The `w(z)` event of the second phase (thread `t3`).
    pub second_write_z: EventId,
    /// The bit strings encoded in the trace.
    pub u: Vec<bool>,
    /// Second bit string.
    pub v: Vec<bool>,
}

impl LowerBoundTrace {
    /// Whether the paper's construction predicts the two `w(z)` events to be
    /// WCP ordered (no race): exactly when `u == v`.
    pub fn expect_ordered(&self) -> bool {
        self.u == self.v
    }
}

/// Builds the Figure 8 trace for bit strings `u` and `v`.
///
/// Bits select between the two locks `ℓ0` and `ℓ1` for the `b_i` / `c_i`
/// critical sections.  The two strings must have equal length.
///
/// # Panics
///
/// Panics if `u` and `v` have different lengths or are empty.
pub fn lower_bound_trace(u: &[bool], v: &[bool]) -> LowerBoundTrace {
    assert_eq!(u.len(), v.len(), "both bit strings must have the same length");
    assert!(!u.is_empty(), "bit strings must be non-empty");
    let n = u.len();

    let mut b = TraceBuilder::new();
    let t1 = b.thread("t1");
    let t2 = b.thread("t2");
    let t3 = b.thread("t3");
    let bit_locks = [b.lock("bit0"), b.lock("bit1")];
    let m = b.lock("m");
    let y = b.lock("y");
    let x = b.variable("x");
    let z = b.variable("z");

    let lock_of = |bit: bool| if bit { bit_locks[1] } else { bit_locks[0] };

    // --- Phase 1: t1 (the b_i critical sections) interleaved with t2 (lock m).
    //
    // Per block i (see Figure 8, lines 1–24 for n = 3):
    //   t1: acq(b_i) [w(x) only for i = 0] acrl(y)  … acrl(y) rel(b_i)
    //   t2: acq(m)   acrl(y) … acrl(y) rel(m)
    // with the ping-pong direction alternating so that
    //   acq(m)   ≤HB rel(b_i)   (t2 → t1 hand-off), and
    //   acq(b_{i+1}) ≤HB rel(m) (t1 → t2 hand-off).
    b.acquire(t1, lock_of(u[0])); // acq(b_0)
    b.write(t1, x);
    for i in 0..n {
        // t2 opens (or re-opens) its critical section over m.
        b.acquire(t2, m);
        // Hand-off t2 -> t1: t2's acrl(y) then t1's acrl(y).
        b.acrl(t2, y);
        b.acrl(t1, y);
        // t1 closes b_i.
        b.release(t1, lock_of(u[i]));
        if i + 1 < n {
            // t1 opens b_{i+1} and hands back to t2.
            b.acquire(t1, lock_of(u[i + 1]));
            b.acrl(t1, y);
            b.acrl(t2, y);
            b.release(t2, m);
        }
    }
    // Final block: t2 writes z inside its last critical section over m.
    let first_write_z = b.write(t2, z);
    b.release(t2, m);

    // --- Phase 2: t3 replays the pattern with the c_i locks.
    for (i, &bit) in v.iter().enumerate() {
        b.acquire(t3, lock_of(bit));
        if i == 0 {
            b.write(t3, x);
        }
        b.release(t3, lock_of(bit));
        b.acquire(t3, m);
        b.release(t3, m);
    }
    let second_write_z = b.write(t3, z);

    LowerBoundTrace {
        trace: b.finish(),
        first_write_z,
        second_write_z,
        u: u.to_vec(),
        v: v.to_vec(),
    }
}

/// Converts an unsigned integer into its `bits`-wide big-endian bit vector,
/// convenient for sweeping the whole family in tests and benches.
pub fn bits_of(value: u64, bits: usize) -> Vec<bool> {
    (0..bits).rev().map(|shift| (value >> shift) & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_valid_for_all_small_instances() {
        for bits in 1..=4 {
            for u_value in 0..(1u64 << bits) {
                for v_value in 0..(1u64 << bits) {
                    let instance =
                        lower_bound_trace(&bits_of(u_value, bits), &bits_of(v_value, bits));
                    assert!(
                        instance.trace.validate().is_ok(),
                        "invalid trace for u={u_value:b} v={v_value:b} ({bits} bits)"
                    );
                }
            }
        }
    }

    #[test]
    fn expectation_follows_string_equality() {
        let equal = lower_bound_trace(&bits_of(0b101, 3), &bits_of(0b101, 3));
        assert!(equal.expect_ordered());
        let different = lower_bound_trace(&bits_of(0b101, 3), &bits_of(0b100, 3));
        assert!(!different.expect_ordered());
    }

    #[test]
    fn writes_to_z_conflict() {
        let instance = lower_bound_trace(&bits_of(0b11, 2), &bits_of(0b01, 2));
        let first = instance.trace.event(instance.first_write_z);
        let second = instance.trace.event(instance.second_write_z);
        assert!(first.conflicts_with(second));
    }

    #[test]
    fn trace_size_grows_linearly_with_n() {
        let small = lower_bound_trace(&bits_of(0, 2), &bits_of(0, 2)).trace.len();
        let large = lower_bound_trace(&bits_of(0, 8), &bits_of(0, 8)).trace.len();
        // Each extra bit adds a constant number of events (12 to phase 1, 4 to
        // phase 2).
        assert!(large > small);
        assert_eq!((large - small) % 6, 0);
        let per_bit = (large - small) / 6;
        assert_eq!(per_bit, 16, "unexpected per-bit growth {per_bit}");
    }

    #[test]
    fn bits_of_is_big_endian() {
        assert_eq!(bits_of(0b110, 3), vec![true, true, false]);
        assert_eq!(bits_of(1, 4), vec![false, false, false, true]);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_lengths_panic() {
        lower_bound_trace(&[true], &[true, false]);
    }
}
