//! Deterministic models of the paper's 18 evaluation benchmarks (Table 1).
//!
//! The paper's workloads are execution traces of Java programs (IBM Contest,
//! Java Grande, DaCapo, Derby, FTPServer, Jigsaw, Eclipse) logged with
//! RVPredict.  This reproduction has no JVM, so each benchmark is modelled by
//! a deterministic generator that matches the benchmark's *profile* from
//! Table 1 — thread count, lock count, event volume (scaled down by a
//! documented factor for the largest traces) — and embeds the same number of
//! racy program-location pairs:
//!
//! * `hb_races` pairs detectable by HB (and therefore also WCP),
//!   split into *near* pairs (adjacent accesses — visible inside any analysis
//!   window) and *far* pairs (accesses separated by a large fraction of the
//!   trace — invisible to windowed analyses, the effect §4.3 highlights);
//! * `wcp_races − hb_races` pairs following the Figure 2b pattern, detectable
//!   by WCP but not by HB (the boldfaced rows of Table 1);
//! * race-free filler: lock-protected shared counters and thread-local work.
//!
//! The generated trace for benchmark *B* is a function of *B*'s spec only, so
//! repeated runs (and the bench harness) see identical traces.

use rapid_trace::{LockId, Trace, TraceBuilder, VarId};
use rapid_vc::ThreadId;

/// Static description of one benchmark row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchmarkSpec {
    /// Benchmark name (column 1).
    pub name: &'static str,
    /// Lines of source code in the original program (column 2).
    pub loc: usize,
    /// Number of events in the paper's logged trace (column 3).
    pub paper_events: usize,
    /// Number of threads (column 4).
    pub threads: usize,
    /// Number of locks (column 5).
    pub locks: usize,
    /// Distinct WCP race pairs reported in the paper (column 6).
    pub wcp_races: usize,
    /// Distinct HB race pairs reported in the paper (column 7).
    pub hb_races: usize,
    /// Best race count across RVPredict configurations (column 10).
    pub rv_max_races: usize,
}

impl BenchmarkSpec {
    /// Number of race pairs detectable by WCP but not HB.
    pub fn wcp_only_races(&self) -> usize {
        self.wcp_races.saturating_sub(self.hb_races)
    }

    /// Number of HB race pairs placed "far apart" in the generated trace
    /// (≳ 60 % of the trace apart), so that windowed analyses miss them.
    /// Mirrors §4.3: on the large benchmarks most races cross any window.
    pub fn far_races(&self) -> usize {
        if self.paper_events >= 100_000 {
            self.hb_races.saturating_sub(self.rv_max_races)
        } else {
            0
        }
    }

    /// Number of HB race pairs placed as adjacent accesses.
    pub fn near_races(&self) -> usize {
        self.hb_races - self.far_races()
    }

    /// Default number of events generated for this benchmark: the paper's
    /// trace length, capped at 50 000 events (the cap keeps the full Table 1
    /// harness runnable on a laptop; the scaling benches sweep larger sizes).
    pub fn default_scaled_events(&self) -> usize {
        self.paper_events.min(50_000)
    }
}

/// A generated benchmark workload: the spec plus the synthetic trace.
#[derive(Debug, Clone)]
pub struct BenchmarkModel {
    /// The Table 1 row this models.
    pub spec: BenchmarkSpec,
    /// The generated trace.
    pub trace: Trace,
}

/// The 18 rows of Table 1.
pub const SPECS: [BenchmarkSpec; 18] = [
    BenchmarkSpec {
        name: "account",
        loc: 87,
        paper_events: 130,
        threads: 4,
        locks: 3,
        wcp_races: 4,
        hb_races: 4,
        rv_max_races: 4,
    },
    BenchmarkSpec {
        name: "airline",
        loc: 83,
        paper_events: 128,
        threads: 2,
        locks: 0,
        wcp_races: 4,
        hb_races: 4,
        rv_max_races: 4,
    },
    BenchmarkSpec {
        name: "array",
        loc: 36,
        paper_events: 47,
        threads: 3,
        locks: 2,
        wcp_races: 0,
        hb_races: 0,
        rv_max_races: 0,
    },
    BenchmarkSpec {
        name: "boundedbuffer",
        loc: 334,
        paper_events: 333,
        threads: 2,
        locks: 2,
        wcp_races: 2,
        hb_races: 2,
        rv_max_races: 2,
    },
    BenchmarkSpec {
        name: "bubblesort",
        loc: 274,
        paper_events: 4_000,
        threads: 10,
        locks: 2,
        wcp_races: 6,
        hb_races: 6,
        rv_max_races: 6,
    },
    BenchmarkSpec {
        name: "bufwriter",
        loc: 199,
        paper_events: 11_700_000,
        threads: 6,
        locks: 1,
        wcp_races: 2,
        hb_races: 2,
        rv_max_races: 2,
    },
    BenchmarkSpec {
        name: "critical",
        loc: 63,
        paper_events: 55,
        threads: 4,
        locks: 0,
        wcp_races: 8,
        hb_races: 8,
        rv_max_races: 8,
    },
    BenchmarkSpec {
        name: "mergesort",
        loc: 298,
        paper_events: 3_000,
        threads: 5,
        locks: 3,
        wcp_races: 3,
        hb_races: 3,
        rv_max_races: 2,
    },
    BenchmarkSpec {
        name: "pingpong",
        loc: 124,
        paper_events: 146,
        threads: 4,
        locks: 0,
        wcp_races: 7,
        hb_races: 7,
        rv_max_races: 7,
    },
    BenchmarkSpec {
        name: "moldyn",
        loc: 2_900,
        paper_events: 164_000,
        threads: 3,
        locks: 2,
        wcp_races: 44,
        hb_races: 44,
        rv_max_races: 2,
    },
    BenchmarkSpec {
        name: "montecarlo",
        loc: 2_900,
        paper_events: 7_200_000,
        threads: 3,
        locks: 3,
        wcp_races: 5,
        hb_races: 5,
        rv_max_races: 1,
    },
    BenchmarkSpec {
        name: "raytracer",
        loc: 2_900,
        paper_events: 16_000,
        threads: 3,
        locks: 8,
        wcp_races: 3,
        hb_races: 3,
        rv_max_races: 3,
    },
    BenchmarkSpec {
        name: "derby",
        loc: 302_000,
        paper_events: 1_300_000,
        threads: 4,
        locks: 1_112,
        wcp_races: 23,
        hb_races: 23,
        rv_max_races: 14,
    },
    BenchmarkSpec {
        name: "eclipse",
        loc: 560_000,
        paper_events: 87_000_000,
        threads: 14,
        locks: 8_263,
        wcp_races: 66,
        hb_races: 64,
        rv_max_races: 8,
    },
    BenchmarkSpec {
        name: "ftpserver",
        loc: 32_000,
        paper_events: 49_000,
        threads: 11,
        locks: 304,
        wcp_races: 36,
        hb_races: 36,
        rv_max_races: 12,
    },
    BenchmarkSpec {
        name: "jigsaw",
        loc: 101_000,
        paper_events: 3_000_000,
        threads: 13,
        locks: 280,
        wcp_races: 14,
        hb_races: 11,
        rv_max_races: 6,
    },
    BenchmarkSpec {
        name: "lusearch",
        loc: 410_000,
        paper_events: 216_000_000,
        threads: 7,
        locks: 118,
        wcp_races: 160,
        hb_races: 160,
        rv_max_races: 0,
    },
    BenchmarkSpec {
        name: "xalan",
        loc: 180_000,
        paper_events: 122_000_000,
        threads: 6,
        locks: 2_494,
        wcp_races: 18,
        hb_races: 15,
        rv_max_races: 8,
    },
];

/// Names of all modelled benchmarks, in Table 1 order.
pub fn benchmark_names() -> Vec<&'static str> {
    SPECS.iter().map(|spec| spec.name).collect()
}

/// Looks up a benchmark spec by name.
pub fn spec(name: &str) -> Option<BenchmarkSpec> {
    SPECS.iter().copied().find(|spec| spec.name == name)
}

/// Generates the named benchmark at its default scale.
pub fn benchmark(name: &str) -> Option<BenchmarkModel> {
    spec(name).map(|spec| generate(spec, spec.default_scaled_events()))
}

/// Generates the named benchmark with an explicit event budget.
pub fn benchmark_scaled(name: &str, events: usize) -> Option<BenchmarkModel> {
    spec(name).map(|spec| generate(spec, events))
}

/// Generates every benchmark at its default scale.
pub fn all_benchmarks() -> Vec<BenchmarkModel> {
    SPECS.iter().map(|spec| generate(*spec, spec.default_scaled_events())).collect()
}

struct ModelBuilder {
    builder: TraceBuilder,
    threads: Vec<ThreadId>,
    locks: Vec<LockId>,
    counters: Vec<VarId>,
    locals: Vec<VarId>,
    spec: BenchmarkSpec,
    /// Number of protected-counter episodes emitted so far.  Thread and lock
    /// rotation is driven by this counter (not by the caller's step counter)
    /// so that every filler thread takes part in every lock's locality block,
    /// which keeps Algorithm 1's queues draining.
    counter_episodes: usize,
}

impl ModelBuilder {
    fn new(spec: BenchmarkSpec, events: usize) -> Self {
        let mut builder = TraceBuilder::new();
        let threads = builder.threads(spec.threads.max(2));
        // The paper's lock counts (column 5) come from traces of up to 216 M
        // events; a scaled-down trace naturally touches proportionally fewer
        // locks.  Scaling the lock count with the event budget keeps the
        // filler realistic (locks are revisited throughout the run, so
        // Algorithm 1's queues keep draining as they do on the real traces).
        let scaled_locks = spec
            .locks
            .min((events / (spec.threads.max(2) * 150)).max(2))
            .max(usize::from(spec.locks > 0));
        let locks = builder.locks(if spec.locks == 0 { 0 } else { scaled_locks });
        // One shared counter per lock (so that every counter access is
        // consistently protected by exactly one lock), plus one thread-local
        // variable per thread.
        let counters =
            (0..spec.locks.max(1)).map(|i| builder.variable(&format!("counter{i}"))).collect();
        let locals =
            (0..spec.threads.max(2)).map(|i| builder.variable(&format!("local_t{i}"))).collect();
        ModelBuilder { builder, threads, locks, counters, locals, spec, counter_episodes: 0 }
    }

    /// The thread reserved for the late half of far races (it is kept out of
    /// the middle filler so no happens-before path can reach its late reads).
    fn late_thread(&self) -> ThreadId {
        self.threads[self.threads.len() - 1]
    }

    /// Threads participating in the middle filler.
    fn filler_threads(&self) -> &[ThreadId] {
        if self.spec.far_races() > 0 && self.threads.len() > 1 {
            &self.threads[..self.threads.len() - 1]
        } else {
            &self.threads
        }
    }

    /// A race-free, lock-protected read-modify-write of the counter
    /// associated with lock `index` (4 events).
    fn protected_counter(&mut self, step: usize) {
        if self.locks.is_empty() {
            // Lock-free benchmark: thread-local work instead.
            self.local_work(step);
            return;
        }
        let episode = self.counter_episodes;
        self.counter_episodes += 1;
        let (thread, thread_count) = {
            let threads = self.filler_threads();
            (threads[episode % threads.len()], threads.len())
        };
        // Consecutive episodes keep using the same lock across all filler
        // threads (a "locality block") before moving on to the next lock.
        // This mirrors how real workloads reuse the same monitors in bursts
        // and is what keeps Algorithm 1's acquire/release queues drained.
        let lock = self.locks[(episode / thread_count.max(1)) % self.locks.len()];
        let counter = self.counters[lock.index() % self.counters.len()];
        let local = self.locals[thread.index() % self.locals.len()];
        let site = step % 17;
        self.builder.at(&format!("{}/Counter.java:{}", self.spec.name, 10 + site));
        self.builder.acquire(thread, lock);
        self.builder.at(&format!("{}/Counter.java:{}", self.spec.name, 11 + site));
        self.builder.read(thread, counter);
        self.builder.at(&format!("{}/Counter.java:{}", self.spec.name, 12 + site));
        self.builder.write(thread, counter);
        // Real critical sections are dominated by ordinary (non-racy) memory
        // accesses; keep the synchronization fraction of the trace realistic.
        let body = 8 + step % 8;
        for offset in 0..body {
            self.builder.at(&format!(
                "{}/Counter.java:{}",
                self.spec.name,
                20 + (site + offset) % 31
            ));
            if offset % 3 == 0 {
                self.builder.write(thread, local);
            } else {
                self.builder.read(thread, local);
            }
        }
        self.builder.at(&format!("{}/Counter.java:{}", self.spec.name, 13 + site));
        self.builder.release(thread, lock);
    }

    /// Thread-local work (2 events): never conflicts.
    fn local_work(&mut self, step: usize) {
        let thread = {
            let threads = self.filler_threads();
            threads[step % threads.len()]
        };
        let local = self.locals[thread.index() % self.locals.len()];
        let site = step % 23;
        self.builder.at(&format!("{}/Local.java:{}", self.spec.name, 40 + site));
        self.builder.read(thread, local);
        self.builder.at(&format!("{}/Local.java:{}", self.spec.name, 41 + site));
        self.builder.write(thread, local);
    }

    /// A near race (2 events): an unprotected write immediately followed by a
    /// conflicting unprotected read from another thread.  Detected by HB,
    /// WCP and any windowed analysis.
    fn near_race(&mut self, index: usize) {
        let (writer, reader) = {
            let threads = self.filler_threads();
            (threads[index % threads.len()], threads[(index + 1) % threads.len()])
        };
        let variable = self.builder.variable(&format!("near_racy{index}"));
        self.builder.at(&format!("{}/Near.java:{}", self.spec.name, 100 + 2 * index));
        self.builder.write(writer, variable);
        self.builder.at(&format!("{}/Near.java:{}", self.spec.name, 101 + 2 * index));
        self.builder.read(reader, variable);
    }

    /// A WCP-only race (8 events): the Figure 2b pattern — HB orders the pair
    /// through the lock hand-off, WCP does not.
    fn wcp_only_race(&mut self, index: usize) {
        let (t1, t2) = {
            let threads = self.filler_threads();
            (threads[index % threads.len()], threads[(index + 1) % threads.len()])
        };
        let lock = if self.locks.is_empty() {
            self.builder.lock("wcp_only_lock")
        } else {
            self.locks[index % self.locks.len()]
        };
        let x = self.builder.variable(&format!("wcp_guarded{index}"));
        let y = self.builder.variable(&format!("wcp_racy{index}"));
        let base = 200 + 8 * index;
        self.builder.at(&format!("{}/Wcp.java:{}", self.spec.name, base));
        self.builder.write(t1, y);
        self.builder.at(&format!("{}/Wcp.java:{}", self.spec.name, base + 1));
        self.builder.acquire(t1, lock);
        self.builder.at(&format!("{}/Wcp.java:{}", self.spec.name, base + 2));
        self.builder.write(t1, x);
        self.builder.at(&format!("{}/Wcp.java:{}", self.spec.name, base + 3));
        self.builder.release(t1, lock);
        self.builder.at(&format!("{}/Wcp.java:{}", self.spec.name, base + 4));
        self.builder.acquire(t2, lock);
        self.builder.at(&format!("{}/Wcp.java:{}", self.spec.name, base + 5));
        self.builder.read(t2, y);
        self.builder.at(&format!("{}/Wcp.java:{}", self.spec.name, base + 6));
        self.builder.read(t2, x);
        self.builder.at(&format!("{}/Wcp.java:{}", self.spec.name, base + 7));
        self.builder.release(t2, lock);
    }

    /// The early half of far race `index` (1 event): an unprotected write by
    /// a filler thread.
    fn far_race_write(&mut self, index: usize) {
        let writer = {
            let threads = self.filler_threads();
            threads[index % threads.len()]
        };
        let variable = self.builder.variable(&format!("far_racy{index}"));
        self.builder.at(&format!("{}/Far.java:{}", self.spec.name, 300 + 2 * index));
        self.builder.write(writer, variable);
    }

    /// The late half of far race `index` (1 event): a read by the reserved
    /// late thread, emitted after the whole middle filler.
    fn far_race_read(&mut self, index: usize) {
        let reader = self.late_thread();
        let variable = self.builder.variable(&format!("far_racy{index}"));
        self.builder.at(&format!("{}/Far.java:{}", self.spec.name, 301 + 2 * index));
        self.builder.read(reader, variable);
    }
}

/// Generates the trace for `spec` with roughly `events` events.
pub fn generate(spec: BenchmarkSpec, events: usize) -> BenchmarkModel {
    let mut model = ModelBuilder::new(spec, events);

    let far = spec.far_races();
    let near = spec.near_races();
    let wcp_only = spec.wcp_only_races();

    // 1. Early section: the writes of all far races.
    for index in 0..far {
        model.far_race_write(index);
    }

    // 2. Middle filler with the near and WCP-only races spread evenly.
    let reserved_tail = far + 4;
    let budget = events.saturating_sub(model.builder.len() + reserved_tail);
    let mut emitted_near = 0usize;
    let mut emitted_wcp_only = 0usize;
    let special_total = near + wcp_only;
    let mut step = 0usize;
    while model.builder.len() < budget.max(special_total * 10 + 8) + far {
        // Interleave: every few filler episodes, emit the next special episode
        // at an evenly spaced position.
        let fraction = (model.builder.len() as f64 / (budget.max(1) as f64)).clamp(0.0, 1.0);
        let specials_due = ((fraction * special_total as f64).ceil() as usize).min(special_total);
        if emitted_near + emitted_wcp_only < specials_due {
            if emitted_near < near {
                model.near_race(emitted_near);
                emitted_near += 1;
            } else if emitted_wcp_only < wcp_only {
                model.wcp_only_race(emitted_wcp_only);
                emitted_wcp_only += 1;
            }
        }
        // Regular filler: alternate protected counters and local work.
        if step % 3 == 2 {
            model.local_work(step);
        } else {
            model.protected_counter(step);
        }
        step += 1;
        if step > events * 4 {
            break; // safety net; never hit in practice
        }
    }
    // Flush any specials not yet emitted (tiny benchmarks).
    while emitted_near < near {
        model.near_race(emitted_near);
        emitted_near += 1;
    }
    while emitted_wcp_only < wcp_only {
        model.wcp_only_race(emitted_wcp_only);
        emitted_wcp_only += 1;
    }

    // 3. Late section: the reads of all far races.
    for index in 0..far {
        model.far_race_read(index);
    }

    BenchmarkModel { spec, trace: model.builder.finish() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_have_distinct_names() {
        let names = benchmark_names();
        let mut deduped = names.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(names.len(), 18);
        assert_eq!(deduped.len(), 18);
    }

    #[test]
    fn lookup_by_name() {
        assert!(spec("eclipse").is_some());
        assert!(spec("does-not-exist").is_none());
        assert_eq!(spec("eclipse").unwrap().threads, 14);
        assert!(benchmark("account").is_some());
        assert!(benchmark("nope").is_none());
    }

    #[test]
    fn generated_traces_are_valid_and_sized() {
        for spec in SPECS {
            let model = generate(spec, spec.default_scaled_events().min(5_000));
            assert!(model.trace.validate().is_ok(), "{} generated an invalid trace", spec.name);
            let stats = model.trace.stats();
            assert!(stats.threads <= spec.threads.max(2), "{}", spec.name);
            assert!(stats.events > 0, "{}", spec.name);
        }
    }

    #[test]
    fn small_benchmarks_match_paper_scale_exactly() {
        let account = benchmark("account").unwrap();
        assert!(account.trace.len() >= 100 && account.trace.len() <= 200);
        let array = benchmark("array").unwrap();
        assert!(array.trace.len() <= 80);
    }

    #[test]
    fn thread_and_lock_profiles_follow_the_spec() {
        let ftp = benchmark_scaled("ftpserver", 8_000).unwrap();
        let stats = ftp.trace.stats();
        assert_eq!(stats.threads, 11);
        assert!(stats.locks <= 304);
        let airline = benchmark("airline").unwrap();
        assert_eq!(airline.trace.stats().locks, 0);
    }

    #[test]
    fn race_budget_helpers_are_consistent() {
        for spec in SPECS {
            assert_eq!(spec.near_races() + spec.far_races(), spec.hb_races, "{}", spec.name);
            assert_eq!(
                spec.wcp_only_races() + spec.hb_races,
                spec.wcp_races.max(spec.hb_races),
                "{}",
                spec.name
            );
        }
    }

    #[test]
    fn far_races_span_a_large_fraction_of_the_trace() {
        let model = benchmark_scaled("moldyn", 10_000).unwrap();
        assert!(model.spec.far_races() > 0);
        let trace = &model.trace;
        // The far-race variables are written in the first few events and read
        // in the last few.
        let far_reads = trace
            .events()
            .iter()
            .rev()
            .take(model.spec.far_races())
            .filter(|event| event.kind().is_read())
            .count();
        assert_eq!(far_reads, model.spec.far_races());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = benchmark_scaled("derby", 3_000).unwrap();
        let b = benchmark_scaled("derby", 3_000).unwrap();
        assert_eq!(a.trace, b.trace);
    }
}
