//! Exact encodings of the paper's example traces (Figures 1–6).
//!
//! Each figure comes with the pair of conflicting events the paper discusses
//! and the expected verdict of each analysis, so that the detector crates can
//! test themselves against the paper's claims line by line.

use rapid_trace::{EventId, Trace, TraceBuilder};

/// One of the paper's example traces, with its focal conflicting pair and the
/// expected analysis outcomes.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Short identifier, e.g. `"figure-2b"`.
    pub name: &'static str,
    /// What the figure demonstrates.
    pub description: &'static str,
    /// The encoded trace.
    pub trace: Trace,
    /// The earlier event of the conflicting pair the paper focuses on.
    pub first: EventId,
    /// The later event of the conflicting pair the paper focuses on.
    pub second: EventId,
    /// Does HB leave the pair unordered (i.e. report an HB-race)?
    pub hb_race: bool,
    /// Does CP leave the pair unordered?
    pub cp_race: bool,
    /// Does WCP leave the pair unordered?
    pub wcp_race: bool,
    /// Does the trace have a predictable race on the pair (a correct
    /// reordering that makes the accesses adjacent)?
    pub predictable_race: bool,
    /// Does the trace have a predictable deadlock?
    pub predictable_deadlock: bool,
}

/// Figure 1a: conflicting writes force the critical sections to stay in
/// order; no analysis reports a race and none is predictable.
pub fn figure_1a() -> Figure {
    let mut b = TraceBuilder::new();
    let t1 = b.thread("t1");
    let t2 = b.thread("t2");
    let l = b.lock("l");
    let x = b.variable("x");
    b.acquire(t1, l); // 1
    b.read(t1, x); // 2
    let first = b.write(t1, x); // 3
    b.release(t1, l); // 4
    b.acquire(t2, l); // 5
    let second = b.read(t2, x); // 6
    b.write(t2, x); // 7
    b.release(t2, l); // 8
    Figure {
        name: "figure-1a",
        description: "critical sections cannot be swapped: conflicting accesses inside them",
        trace: b.finish(),
        first,
        second,
        hb_race: false,
        cp_race: false,
        wcp_race: false,
        predictable_race: false,
        predictable_deadlock: false,
    }
}

/// Figure 1b: the critical sections can be swapped, exposing a race on `y`
/// that HB misses (HB orders the rel/acq pair on `l`).
pub fn figure_1b() -> Figure {
    let mut b = TraceBuilder::new();
    let t1 = b.thread("t1");
    let t2 = b.thread("t2");
    let l = b.lock("l");
    let x = b.variable("x");
    let y = b.variable("y");
    let first = b.write(t1, y); // 1
    b.acquire(t1, l); // 2
    b.read(t1, x); // 3
    b.release(t1, l); // 4
    b.acquire(t2, l); // 5
    b.read(t2, x); // 6
    b.release(t2, l); // 7
    let second = b.read(t2, y); // 8
    Figure {
        name: "figure-1b",
        description: "swappable critical sections reveal a predictable race on y missed by HB",
        trace: b.finish(),
        first,
        second,
        hb_race: false,
        cp_race: true,
        wcp_race: true,
        predictable_race: true,
        predictable_deadlock: false,
    }
}

/// Figure 2a: the `r(x)` in `t2` must follow the `w(x)` in `t1`, so the
/// critical sections cannot be reordered; no analysis reports a race on `y`.
pub fn figure_2a() -> Figure {
    let mut b = TraceBuilder::new();
    let t1 = b.thread("t1");
    let t2 = b.thread("t2");
    let l = b.lock("l");
    let x = b.variable("x");
    let y = b.variable("y");
    let first = b.write(t1, y); // 1
    b.acquire(t1, l); // 2
    b.write(t1, x); // 3
    b.release(t1, l); // 4
    b.acquire(t2, l); // 5
    b.read(t2, x); // 6
    let second = b.read(t2, y); // 7
    b.release(t2, l); // 8
    Figure {
        name: "figure-2a",
        description: "no predictable race: r(x) before r(y) pins the critical sections",
        trace: b.finish(),
        first,
        second,
        hb_race: false,
        cp_race: false,
        wcp_race: false,
        predictable_race: false,
        predictable_deadlock: false,
    }
}

/// Figure 2b: swapping lines 6 and 7 of Figure 2a creates a predictable race
/// on `y` that WCP detects but CP (and HB) miss.
pub fn figure_2b() -> Figure {
    let mut b = TraceBuilder::new();
    let t1 = b.thread("t1");
    let t2 = b.thread("t2");
    let l = b.lock("l");
    let x = b.variable("x");
    let y = b.variable("y");
    let first = b.write(t1, y); // 1
    b.acquire(t1, l); // 2
    b.write(t1, x); // 3
    b.release(t1, l); // 4
    b.acquire(t2, l); // 5
    let second = b.read(t2, y); // 6
    b.read(t2, x); // 7
    b.release(t2, l); // 8
    Figure {
        name: "figure-2b",
        description: "predictable race on y detected by WCP but not by CP",
        trace: b.finish(),
        first,
        second,
        hb_race: false,
        cp_race: false,
        wcp_race: true,
        predictable_race: true,
        predictable_deadlock: false,
    }
}

/// Figure 3: weakening CP's Rule (b) lets WCP find a predictable race on `z`
/// that CP orders away.
pub fn figure_3() -> Figure {
    let mut b = TraceBuilder::new();
    let t1 = b.thread("t1");
    let t2 = b.thread("t2");
    let t3 = b.thread("t3");
    let l = b.lock("l");
    let n = b.lock("n");
    let x_sync = b.lock("x");
    let z = b.variable("z");
    b.acquire(t1, l); // 1
    b.sync(t1, x_sync); // 2
    let first = b.read(t1, z); // 3
    b.release(t1, l); // 4
    b.sync(t2, x_sync); // 5
    b.acquire(t2, l); // 6
    b.acquire(t2, n); // 7
    b.release(t2, n); // 8
    b.release(t2, l); // 9
    b.acquire(t3, n); // 10
    b.release(t3, n); // 11
    let second = b.write(t3, z); // 12
    Figure {
        name: "figure-3",
        description: "weakened Rule (b): WCP reports the race on z, CP does not",
        trace: b.finish(),
        first,
        second,
        hb_race: false,
        cp_race: false,
        wcp_race: true,
        predictable_race: true,
        predictable_deadlock: false,
    }
}

/// Figure 4: a three-thread example with a predictable race on `z` detected
/// by WCP but not CP.
pub fn figure_4() -> Figure {
    let mut b = TraceBuilder::new();
    let t1 = b.thread("t1");
    let t2 = b.thread("t2");
    let t3 = b.thread("t3");
    let l = b.lock("l");
    let m = b.lock("m");
    let n = b.lock("n");
    let x_sync = b.lock("x");
    let z = b.variable("z");
    b.acquire(t1, l); // 1
    b.acquire(t1, m); // 2
    b.release(t1, m); // 3
    let first = b.read(t1, z); // 4
    b.release(t1, l); // 5
    b.acquire(t2, m); // 6
    b.acquire(t2, n); // 7
    b.sync(t2, x_sync); // 8
    b.release(t2, n); // 9
    b.release(t2, m); // 10
    b.acquire(t3, n); // 11
    b.acquire(t3, l); // 12
    b.release(t3, l); // 13
    b.sync(t3, x_sync); // 14
    let second = b.write(t3, z); // 15
    b.release(t3, n); // 16
    Figure {
        name: "figure-4",
        description: "predictable race on z detected by WCP but not CP (three threads)",
        trace: b.finish(),
        first,
        second,
        hb_race: false,
        cp_race: false,
        wcp_race: true,
        predictable_race: true,
        predictable_deadlock: true,
    }
}

/// Figure 5: a slight variation of Figure 4 in which the WCP-race on `z` is
/// *not* a predictable race but a predictable deadlock (weak soundness).
pub fn figure_5() -> Figure {
    let mut b = TraceBuilder::new();
    let t1 = b.thread("t1");
    let t2 = b.thread("t2");
    let t3 = b.thread("t3");
    let l = b.lock("l");
    let m = b.lock("m");
    let n = b.lock("n");
    let x_sync = b.lock("x");
    let y_sync = b.lock("y");
    let z = b.variable("z");
    b.acquire(t1, l); // 1
    b.acquire(t1, m); // 2
    b.release(t1, m); // 3
    let first = b.read(t1, z); // 4
    b.release(t1, l); // 5
    b.acquire(t2, m); // 6
    b.acquire(t2, n); // 7
    b.sync(t2, x_sync); // 8
    b.release(t2, n); // 9
    b.acquire(t3, n); // 10
    b.acquire(t3, l); // 11
    b.release(t3, l); // 12
    b.sync(t3, x_sync); // 13
    let second = b.write(t3, z); // 14
    b.release(t3, n); // 15
    b.sync(t3, y_sync); // 16
    b.sync(t2, y_sync); // 17
    b.release(t2, m); // 18
    Figure {
        name: "figure-5",
        description: "WCP-race on z corresponds to a predictable deadlock, not a predictable race",
        trace: b.finish(),
        first,
        second,
        hb_race: false,
        cp_race: false,
        wcp_race: true,
        predictable_race: false,
        predictable_deadlock: true,
    }
}

/// Figure 6: the trace motivating the FIFO queues of Algorithm 1.  It is the
/// `n = 2` instance of the Figure 8 family (without the final `w(z)`
/// events); the focal pair is the two `w(x)` accesses, which are WCP ordered.
pub fn figure_6() -> Figure {
    let mut b = TraceBuilder::new();
    let t1 = b.thread("t1");
    let t2 = b.thread("t2");
    let t3 = b.thread("t3");
    let l0 = b.lock("l0");
    let l1 = b.lock("l1");
    let m = b.lock("m");
    let y = b.lock("y");
    let x = b.variable("x");
    b.acquire(t1, l0); // 1
    let first = b.write(t1, x); // 2
    b.acquire(t2, m); // 3
    b.acrl(t2, y); // 4
    b.acrl(t1, y); // 5
    b.release(t1, l0); // 6
    b.acquire(t1, l1); // 7
    b.acrl(t1, y); // 8
    b.acrl(t2, y); // 9
    b.release(t2, m); // 10
    b.acquire(t2, m); // 11
    b.acrl(t2, y); // 12
    b.acrl(t1, y); // 13
    b.release(t1, l1); // 14
    b.release(t2, m); // 15
    b.acquire(t3, l0); // 16
    let second = b.write(t3, x); // 17
    b.release(t3, l0); // 18
    b.acquire(t3, m); // 19
    b.release(t3, m); // 20
    b.acquire(t3, l1); // 21
    b.release(t3, l1); // 22
    b.acquire(t3, m); // 23
    b.release(t3, m); // 24
    Figure {
        name: "figure-6",
        description: "queue-motivating trace: Rule (a)/(b) edges chain through the FIFO queues",
        trace: b.finish(),
        first,
        second,
        hb_race: false,
        cp_race: false,
        wcp_race: false,
        predictable_race: false,
        predictable_deadlock: false,
    }
}

/// All paper figures, in order.
pub fn paper_figures() -> Vec<Figure> {
    vec![
        figure_1a(),
        figure_1b(),
        figure_2a(),
        figure_2b(),
        figure_3(),
        figure_4(),
        figure_5(),
        figure_6(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapid_trace::analysis::TraceIndex;
    use rapid_trace::reorder::{find_deadlock_witness, find_race_witness};

    #[test]
    fn all_figures_are_valid_traces() {
        for figure in paper_figures() {
            assert!(
                figure.trace.validate().is_ok(),
                "{} must satisfy lock semantics and well nestedness",
                figure.name
            );
        }
    }

    #[test]
    fn focal_pairs_are_conflicting() {
        for figure in paper_figures() {
            let first = figure.trace.event(figure.first);
            let second = figure.trace.event(figure.second);
            assert!(first.conflicts_with(second), "{}: focal pair must conflict", figure.name);
        }
    }

    #[test]
    fn figure_sizes_match_the_paper() {
        assert_eq!(figure_1a().trace.len(), 8);
        assert_eq!(figure_1b().trace.len(), 8);
        assert_eq!(figure_2a().trace.len(), 8);
        assert_eq!(figure_2b().trace.len(), 8);
        // sync(x) expands to 4 events: 8 simple lines + 1 sync * 2 occurrences.
        assert_eq!(figure_3().trace.len(), 10 + 2 * 4);
        assert_eq!(figure_4().trace.len(), 14 + 2 * 4);
        assert_eq!(figure_5().trace.len(), 14 + 4 * 4);
        // Figure 6: 24 lines, 6 of which are acrl (2 events each).
        assert_eq!(figure_6().trace.len(), 18 + 6 * 2);
    }

    #[test]
    fn predictable_race_flags_match_bounded_witness_search() {
        for figure in paper_figures() {
            let index = TraceIndex::build(&figure.trace);
            let witness =
                find_race_witness(&figure.trace, &index, figure.first, figure.second, 2_000_000);
            assert_eq!(
                witness.is_some(),
                figure.predictable_race,
                "{}: predictable-race flag disagrees with witness search",
                figure.name
            );
        }
    }

    #[test]
    fn figure_5_has_a_predictable_deadlock() {
        let figure = figure_5();
        let index = TraceIndex::build(&figure.trace);
        let witness = find_deadlock_witness(&figure.trace, &index, 5_000_000);
        assert!(witness.is_some(), "figure 5 deadlock must be predictable");
        let (_, threads) = witness.unwrap();
        assert!(threads.len() >= 2);
    }

    #[test]
    fn non_deadlocking_figures_have_no_deadlock() {
        for figure in [figure_1a(), figure_1b(), figure_2a(), figure_2b(), figure_6()] {
            let index = TraceIndex::build(&figure.trace);
            assert!(
                find_deadlock_witness(&figure.trace, &index, 2_000_000).is_none(),
                "{}: unexpected predictable deadlock",
                figure.name
            );
        }
    }
}
