//! Property-based tests for the vector-clock lattice.
//!
//! The race detectors rely on `VectorClock` forming a join-semilattice under
//! `⊔` with `⊑` as its partial order, and on epochs embedding into it
//! consistently.  These laws are exercised over arbitrary clocks.

use proptest::prelude::*;
use rapid_vc::{ClockOrdering, Epoch, ThreadId, VectorClock};

fn clock() -> impl Strategy<Value = VectorClock> {
    prop::collection::vec(0u64..50, 0..6).prop_map(VectorClock::from_components)
}

proptest! {
    #[test]
    fn join_is_commutative(a in clock(), b in clock()) {
        prop_assert_eq!(a.joined(&b), b.joined(&a));
    }

    #[test]
    fn join_is_associative(a in clock(), b in clock(), c in clock()) {
        prop_assert_eq!(a.joined(&b).joined(&c), a.joined(&b.joined(&c)));
    }

    #[test]
    fn join_is_idempotent(a in clock()) {
        prop_assert_eq!(a.joined(&a), a);
    }

    #[test]
    fn bottom_is_identity(a in clock()) {
        let bottom = VectorClock::bottom();
        prop_assert_eq!(a.joined(&bottom), a.clone());
        prop_assert!(bottom.le(&a));
    }

    #[test]
    fn join_is_least_upper_bound(a in clock(), b in clock(), c in clock()) {
        let join = a.joined(&b);
        prop_assert!(a.le(&join));
        prop_assert!(b.le(&join));
        // Any common upper bound dominates the join.
        if a.le(&c) && b.le(&c) {
            prop_assert!(join.le(&c));
        }
    }

    #[test]
    fn le_is_reflexive_and_transitive(a in clock(), b in clock(), c in clock()) {
        prop_assert!(a.le(&a));
        if a.le(&b) && b.le(&c) {
            prop_assert!(a.le(&c));
        }
    }

    #[test]
    fn le_is_antisymmetric_up_to_trailing_zeros(a in clock(), b in clock()) {
        if a.le(&b) && b.le(&a) {
            prop_assert_eq!(a.compare(&b), ClockOrdering::Equal);
            // Every component agrees even if the stored lengths differ.
            for index in 0..a.len().max(b.len()) {
                let thread = ThreadId::new(index as u32);
                prop_assert_eq!(a.get(thread), b.get(thread));
            }
        }
    }

    #[test]
    fn compare_is_consistent_with_le(a in clock(), b in clock()) {
        let ordering = a.compare(&b);
        match ordering {
            ClockOrdering::Equal => prop_assert!(a.le(&b) && b.le(&a)),
            ClockOrdering::Less => prop_assert!(a.le(&b) && !b.le(&a)),
            ClockOrdering::Greater => prop_assert!(!a.le(&b) && b.le(&a)),
            ClockOrdering::Concurrent => prop_assert!(!a.le(&b) && !b.le(&a)),
        }
        prop_assert_eq!(a.concurrent_with(&b), ordering == ClockOrdering::Concurrent);
    }

    #[test]
    fn set_then_get_roundtrips(a in clock(), index in 0u32..8, value in 0u64..100) {
        let mut clock = a;
        let thread = ThreadId::new(index);
        clock.set(thread, value);
        prop_assert_eq!(clock.get(thread), value);
    }

    #[test]
    fn tick_strictly_increases_own_component(a in clock(), index in 0u32..8) {
        let mut clock = a;
        let thread = ThreadId::new(index);
        let before = clock.get(thread);
        let after = clock.tick(thread);
        prop_assert_eq!(after, before + 1);
        prop_assert_eq!(clock.get(thread), after);
    }

    #[test]
    fn join_is_monotone(a in clock(), b in clock(), c in clock()) {
        // a ⊑ b implies a ⊔ c ⊑ b ⊔ c.
        if a.le(&b) {
            prop_assert!(a.joined(&c).le(&b.joined(&c)));
        }
    }

    #[test]
    fn epoch_embedding_agrees_with_component_order(a in clock(), index in 0u32..6) {
        let thread = ThreadId::new(index);
        let epoch = Epoch::of_thread(&a, thread);
        prop_assert_eq!(epoch.clock(), a.get(thread));
        // The epoch happens-before exactly the clocks whose component
        // dominates it.
        prop_assert!(epoch.happens_before(&a));
        let vector = epoch.to_vector();
        prop_assert!(vector.le(&a));
    }

    #[test]
    fn copy_from_and_clear_preserve_lattice_relations(a in clock(), b in clock()) {
        let mut scratch = VectorClock::bottom();
        scratch.copy_from(&a);
        prop_assert_eq!(scratch.compare(&a), ClockOrdering::Equal);
        scratch.clear();
        prop_assert!(scratch.is_bottom());
        scratch.copy_from(&b);
        prop_assert_eq!(scratch.compare(&b), ClockOrdering::Equal);
    }
}
