//! The [`VectorClock`] type and its pointwise operations.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ThreadId;

/// Result of comparing two vector clocks under the pointwise partial order.
///
/// Unlike [`std::cmp::Ordering`], vector times can also be *incomparable*
/// (concurrent), which is exactly the situation race detectors look for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClockOrdering {
    /// Both clocks hold identical times.
    Equal,
    /// The left clock is pointwise ≤ the right one (and not equal).
    Less,
    /// The right clock is pointwise ≤ the left one (and not equal).
    Greater,
    /// Neither clock is pointwise ≤ the other: the times are concurrent.
    Concurrent,
}

/// A vector time / vector clock: a map from [`ThreadId`] to a logical clock.
///
/// The representation is a dense `Vec<u64>` indexed by thread id; components
/// beyond the stored length are implicitly `0`, so clocks over different
/// numbers of threads compare and join correctly.
///
/// # Examples
///
/// ```
/// use rapid_vc::{ThreadId, VectorClock};
///
/// let mut c = VectorClock::bottom();
/// c.set(ThreadId::new(2), 9);
/// assert_eq!(c.get(ThreadId::new(2)), 9);
/// assert_eq!(c.get(ThreadId::new(5)), 0); // implicit zero
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VectorClock {
    components: Vec<u64>,
}

impl VectorClock {
    /// Returns the bottom time `⊥` mapping every thread to `0`.
    pub fn bottom() -> Self {
        VectorClock { components: Vec::new() }
    }

    /// Creates an all-zero clock with space reserved for `threads` components.
    pub fn with_threads(threads: usize) -> Self {
        VectorClock { components: vec![0; threads] }
    }

    /// Creates a clock from an explicit component vector.
    ///
    /// Component `i` is the time of thread `i`.
    pub fn from_components<I>(components: I) -> Self
    where
        I: IntoIterator<Item = u64>,
    {
        VectorClock { components: components.into_iter().collect() }
    }

    /// Returns `⊥[t := n]`: the bottom clock with a single component set.
    pub fn singleton(thread: ThreadId, value: u64) -> Self {
        let mut clock = VectorClock::bottom();
        clock.set(thread, value);
        clock
    }

    /// Returns the component for `thread` (implicitly `0` when absent).
    pub fn get(&self, thread: ThreadId) -> u64 {
        self.components.get(thread.index()).copied().unwrap_or(0)
    }

    /// Sets the component for `thread` to `value` (the paper's `V[t := n]`).
    pub fn set(&mut self, thread: ThreadId, value: u64) {
        let index = thread.index();
        if index >= self.components.len() {
            if value == 0 {
                return;
            }
            self.components.resize(index + 1, 0);
        }
        self.components[index] = value;
    }

    /// Increments the component for `thread` by one and returns the new value.
    pub fn tick(&mut self, thread: ThreadId) -> u64 {
        let next = self.get(thread) + 1;
        self.set(thread, next);
        next
    }

    /// Returns true when every component is zero.
    pub fn is_bottom(&self) -> bool {
        self.components.iter().all(|&component| component == 0)
    }

    /// Number of explicitly stored components (trailing zeros may be stored).
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Returns true when no component is explicitly stored.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Pointwise maximum (`⊔`) with `other`, updating `self` in place.
    pub fn join(&mut self, other: &VectorClock) {
        if other.components.len() > self.components.len() {
            self.components.resize(other.components.len(), 0);
        }
        for (mine, theirs) in self.components.iter_mut().zip(other.components.iter()) {
            if *theirs > *mine {
                *mine = *theirs;
            }
        }
    }

    /// Returns the pointwise maximum of `self` and `other` as a new clock.
    pub fn joined(&self, other: &VectorClock) -> VectorClock {
        let mut result = self.clone();
        result.join(other);
        result
    }

    /// Pointwise comparison `self ⊑ other`.
    pub fn le(&self, other: &VectorClock) -> bool {
        self.components.iter().enumerate().all(|(index, &component)| {
            component <= other.components.get(index).copied().unwrap_or(0)
        })
    }

    /// Pointwise comparison `self ⊑ other[thread := value]` without
    /// materializing the overridden clock.
    ///
    /// Detectors use this to compare against a thread's *event time*
    /// `C_t = P_t[t := N_t]` while only storing `P_t` and the scalar `N_t`,
    /// avoiding a clone-set-compare sequence on the hot path.
    pub fn le_with_override(&self, other: &VectorClock, thread: ThreadId, value: u64) -> bool {
        let overridden = thread.index();
        self.components.iter().enumerate().all(|(index, &component)| {
            let bound = if index == overridden {
                value
            } else {
                other.components.get(index).copied().unwrap_or(0)
            };
            component <= bound
        })
    }

    /// Full comparison under the pointwise partial order.
    pub fn compare(&self, other: &VectorClock) -> ClockOrdering {
        let le = self.le(other);
        let ge = other.le(self);
        match (le, ge) {
            (true, true) => ClockOrdering::Equal,
            (true, false) => ClockOrdering::Less,
            (false, true) => ClockOrdering::Greater,
            (false, false) => ClockOrdering::Concurrent,
        }
    }

    /// Returns true when the two times are incomparable (concurrent).
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        self.compare(other) == ClockOrdering::Concurrent
    }

    /// Resets every component to zero, keeping the allocation.
    pub fn clear(&mut self) {
        for component in &mut self.components {
            *component = 0;
        }
    }

    /// Copies the contents of `other` into `self`, reusing the allocation.
    pub fn copy_from(&mut self, other: &VectorClock) {
        self.components.clear();
        self.components.extend_from_slice(&other.components);
    }

    /// Iterates over `(thread, component)` pairs with non-zero components.
    pub fn iter(&self) -> impl Iterator<Item = (ThreadId, u64)> + '_ {
        self.components
            .iter()
            .enumerate()
            .filter(|(_, &component)| component != 0)
            .map(|(index, &component)| (ThreadId::new(index as u32), component))
    }

    /// Returns the dense component slice (index `i` is thread `i`).
    pub fn as_slice(&self) -> &[u64] {
        &self.components
    }

    /// Approximate heap footprint in bytes (used for memory telemetry).
    pub fn heap_bytes(&self) -> usize {
        self.components.capacity() * std::mem::size_of::<u64>()
    }
}

impl PartialOrd for VectorClock {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match self.compare(other) {
            ClockOrdering::Equal => Some(Ordering::Equal),
            ClockOrdering::Less => Some(Ordering::Less),
            ClockOrdering::Greater => Some(Ordering::Greater),
            ClockOrdering::Concurrent => None,
        }
    }
}

impl FromIterator<u64> for VectorClock {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        VectorClock::from_components(iter)
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (index, component) in self.components.iter().enumerate() {
            if index > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{component}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(index: u32) -> ThreadId {
        ThreadId::new(index)
    }

    #[test]
    fn bottom_is_all_zero() {
        let clock = VectorClock::bottom();
        assert!(clock.is_bottom());
        assert_eq!(clock.get(t(0)), 0);
        assert_eq!(clock.get(t(99)), 0);
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut clock = VectorClock::bottom();
        clock.set(t(4), 17);
        assert_eq!(clock.get(t(4)), 17);
        assert_eq!(clock.get(t(3)), 0);
        assert!(!clock.is_bottom());
    }

    #[test]
    fn set_zero_on_missing_component_is_noop() {
        let mut clock = VectorClock::bottom();
        clock.set(t(5), 0);
        assert!(clock.is_empty());
    }

    #[test]
    fn tick_increments() {
        let mut clock = VectorClock::bottom();
        assert_eq!(clock.tick(t(1)), 1);
        assert_eq!(clock.tick(t(1)), 2);
        assert_eq!(clock.get(t(1)), 2);
    }

    #[test]
    fn join_takes_pointwise_max() {
        let a = VectorClock::from_components([3, 0, 5]);
        let b = VectorClock::from_components([1, 7]);
        let joined = a.joined(&b);
        assert_eq!(joined.as_slice(), &[3, 7, 5]);
    }

    #[test]
    fn join_extends_shorter_clock() {
        let mut a = VectorClock::from_components([1]);
        let b = VectorClock::from_components([0, 0, 9]);
        a.join(&b);
        assert_eq!(a.get(t(2)), 9);
        assert_eq!(a.get(t(0)), 1);
    }

    #[test]
    fn le_handles_different_lengths() {
        let short = VectorClock::from_components([1, 2]);
        let long = VectorClock::from_components([1, 2, 0, 0]);
        assert!(short.le(&long));
        assert!(long.le(&short));
        assert_eq!(short.compare(&long), ClockOrdering::Equal);
    }

    #[test]
    fn compare_detects_concurrency() {
        let a = VectorClock::from_components([2, 0]);
        let b = VectorClock::from_components([0, 2]);
        assert_eq!(a.compare(&b), ClockOrdering::Concurrent);
        assert!(a.concurrent_with(&b));
        assert!(a.partial_cmp(&b).is_none());
    }

    #[test]
    fn compare_detects_strict_order() {
        let a = VectorClock::from_components([1, 1]);
        let b = VectorClock::from_components([2, 1]);
        assert_eq!(a.compare(&b), ClockOrdering::Less);
        assert_eq!(b.compare(&a), ClockOrdering::Greater);
        assert_eq!(a.partial_cmp(&b), Some(Ordering::Less));
    }

    #[test]
    fn singleton_sets_one_component() {
        let clock = VectorClock::singleton(t(3), 11);
        assert_eq!(clock.get(t(3)), 11);
        assert_eq!(clock.iter().count(), 1);
    }

    #[test]
    fn clear_and_copy_from_reuse_allocation() {
        let mut clock = VectorClock::from_components([4, 5, 6]);
        clock.clear();
        assert!(clock.is_bottom());
        let other = VectorClock::from_components([7, 8]);
        clock.copy_from(&other);
        assert_eq!(clock.get(t(0)), 7);
        assert_eq!(clock.get(t(1)), 8);
        assert_eq!(clock.get(t(2)), 0);
    }

    #[test]
    fn display_formats_components() {
        let clock = VectorClock::from_components([1, 0, 3]);
        assert_eq!(clock.to_string(), "[1, 0, 3]");
        assert_eq!(VectorClock::bottom().to_string(), "[]");
    }

    #[test]
    fn join_is_idempotent_commutative_associative() {
        let a = VectorClock::from_components([1, 4, 0, 2]);
        let b = VectorClock::from_components([3, 1]);
        let c = VectorClock::from_components([0, 0, 7]);
        assert_eq!(a.joined(&a), a);
        assert_eq!(a.joined(&b), b.joined(&a));
        assert_eq!(a.joined(&b).joined(&c), a.joined(&b.joined(&c)));
    }

    #[test]
    fn le_with_override_matches_materialized_clock() {
        let base = VectorClock::from_components([2, 3, 1]);
        for thread in 0..4u32 {
            for value in 0..5u64 {
                let mut materialized = base.clone();
                materialized.set(t(thread), value);
                for probe in [
                    VectorClock::from_components([2, 3, 1]),
                    VectorClock::from_components([0, 4]),
                    VectorClock::from_components([2, 3, 1, 1]),
                    VectorClock::bottom(),
                ] {
                    assert_eq!(
                        probe.le_with_override(&base, t(thread), value),
                        probe.le(&materialized),
                        "probe {probe} vs {base}[{thread} := {value}]"
                    );
                }
            }
        }
    }

    #[test]
    fn join_is_least_upper_bound() {
        let a = VectorClock::from_components([1, 4]);
        let b = VectorClock::from_components([3, 1]);
        let joined = a.joined(&b);
        assert!(a.le(&joined));
        assert!(b.le(&joined));
        // Any other upper bound dominates the join.
        let upper = VectorClock::from_components([5, 5]);
        assert!(joined.le(&upper));
    }
}
