//! Compact thread identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A dense, zero-based thread identifier.
///
/// Vector clocks are indexed by `ThreadId`, so identifiers are expected to be
/// small consecutive integers (the trace layer is responsible for interning
/// arbitrary thread names into dense ids).
///
/// # Examples
///
/// ```
/// use rapid_vc::ThreadId;
///
/// let t = ThreadId::new(3);
/// assert_eq!(t.index(), 3);
/// assert_eq!(t.to_string(), "T3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ThreadId(u32);

impl ThreadId {
    /// Creates a thread id from a dense index.
    pub const fn new(index: u32) -> Self {
        ThreadId(index)
    }

    /// Returns the dense index backing this id.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for ThreadId {
    fn from(value: u32) -> Self {
        ThreadId(value)
    }
}

impl From<ThreadId> for u32 {
    fn from(value: ThreadId) -> Self {
        value.0
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = ThreadId::new(7);
        assert_eq!(t.index(), 7);
        assert_eq!(t.raw(), 7);
        assert_eq!(u32::from(t), 7);
        assert_eq!(ThreadId::from(7u32), t);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ThreadId::new(1) < ThreadId::new(2));
        assert_eq!(ThreadId::new(4), ThreadId::new(4));
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(ThreadId::new(0).to_string(), "T0");
        assert_eq!(format!("{}", ThreadId::new(12)), "T12");
    }
}
