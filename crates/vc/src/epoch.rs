//! FastTrack-style epochs: a single `(clock, thread)` pair.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ThreadId, VectorClock};

/// An *epoch* `c@t`: the scalar clock `c` of a single thread `t`.
///
/// The paper lists "epoch based optimizations" as future work (§6); the HB
/// detector in `rapid-hb` offers an epoch-optimized mode in the spirit of
/// FastTrack, where a variable's last write (and often its last read) is
/// represented by one epoch instead of a full vector clock.
///
/// # Examples
///
/// ```
/// use rapid_vc::{Epoch, ThreadId, VectorClock};
///
/// let t1 = ThreadId::new(1);
/// let epoch = Epoch::new(t1, 4);
/// let mut now = VectorClock::bottom();
/// now.set(t1, 5);
/// assert!(epoch.happens_before(&now));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Epoch {
    thread: ThreadId,
    clock: u64,
}

impl Epoch {
    /// Creates the epoch `clock@thread`.
    pub const fn new(thread: ThreadId, clock: u64) -> Self {
        Epoch { thread, clock }
    }

    /// The "never happened" epoch `0@T0`, ⊑ every vector time.
    pub const fn zero() -> Self {
        Epoch { thread: ThreadId::new(0), clock: 0 }
    }

    /// The thread component of the epoch.
    pub const fn thread(self) -> ThreadId {
        self.thread
    }

    /// The scalar clock component of the epoch.
    pub const fn clock(self) -> u64 {
        self.clock
    }

    /// Returns true for the zero epoch.
    pub const fn is_zero(self) -> bool {
        self.clock == 0
    }

    /// Epoch-vs-vector-time comparison: `c@t ⊑ V` iff `c <= V(t)`.
    pub fn happens_before(self, clock: &VectorClock) -> bool {
        self.clock <= clock.get(self.thread)
    }

    /// Reads the epoch of `thread` out of a full vector time.
    pub fn of_thread(clock: &VectorClock, thread: ThreadId) -> Self {
        Epoch { thread, clock: clock.get(thread) }
    }

    /// Expands the epoch into a full vector time with a single component.
    pub fn to_vector(self) -> VectorClock {
        VectorClock::singleton(self.thread, self.clock)
    }
}

impl Default for Epoch {
    fn default() -> Self {
        Epoch::zero()
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.clock, self.thread)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_epoch_precedes_everything() {
        let zero = Epoch::zero();
        assert!(zero.is_zero());
        assert!(zero.happens_before(&VectorClock::bottom()));
        assert!(zero.happens_before(&VectorClock::from_components([5, 5])));
    }

    #[test]
    fn happens_before_checks_single_component() {
        let epoch = Epoch::new(ThreadId::new(1), 3);
        assert!(!epoch.happens_before(&VectorClock::from_components([9, 2])));
        assert!(epoch.happens_before(&VectorClock::from_components([0, 3])));
        assert!(epoch.happens_before(&VectorClock::from_components([0, 4])));
    }

    #[test]
    fn of_thread_and_to_vector_roundtrip() {
        let clock = VectorClock::from_components([1, 7, 3]);
        let epoch = Epoch::of_thread(&clock, ThreadId::new(1));
        assert_eq!(epoch.clock(), 7);
        assert_eq!(epoch.to_vector().get(ThreadId::new(1)), 7);
        assert_eq!(epoch.to_vector().get(ThreadId::new(0)), 0);
    }

    #[test]
    fn display_uses_at_notation() {
        assert_eq!(Epoch::new(ThreadId::new(2), 9).to_string(), "9@T2");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Epoch::default(), Epoch::zero());
    }
}
