//! Vector clocks and epochs for the `rapid-rs` race detectors.
//!
//! The paper ("Dynamic Race Prediction in Linear Time", PLDI 2017, §3.1)
//! distinguishes *clocks* (mutable state cells) from *times* (the immutable
//! values clocks take).  In Rust both are represented by [`VectorClock`]; the
//! detectors keep mutable `VectorClock`s in their state and copy them out when
//! a snapshot ("time") of an event must be remembered.
//!
//! A vector time is a function `Tid -> Nat`.  The paper's operations are:
//!
//! * `V1 ⊑ V2` — pointwise comparison, [`VectorClock::le`];
//! * `V1 ⊔ V2` — pointwise maximum, [`VectorClock::join`];
//! * `V[t := n]` — component assignment, [`VectorClock::set`];
//! * `⊥` — the all-zero time, [`VectorClock::bottom`].
//!
//! The crate also provides [`Epoch`]s (a `(thread, clock)` pair, written
//! `c@t` in the FastTrack literature), used by the epoch-optimized HB
//! detector, and a small arena type [`ClockPool`] used by detectors that
//! allocate many short-lived clocks.
//!
//! # Examples
//!
//! ```
//! use rapid_vc::{ThreadId, VectorClock};
//!
//! let t0 = ThreadId::new(0);
//! let t1 = ThreadId::new(1);
//! let mut a = VectorClock::bottom();
//! a.set(t0, 3);
//! let mut b = VectorClock::bottom();
//! b.set(t1, 5);
//!
//! let joined = a.joined(&b);
//! assert_eq!(joined.get(t0), 3);
//! assert_eq!(joined.get(t1), 5);
//! assert!(a.le(&joined) && b.le(&joined));
//! assert!(!a.le(&b) && !b.le(&a)); // concurrent
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod epoch;
mod pool;
mod thread_id;

pub use clock::{ClockOrdering, VectorClock};
pub use epoch::Epoch;
pub use pool::ClockPool;
pub use thread_id::ThreadId;
