//! A simple free-list pool for [`VectorClock`] allocations.

use crate::VectorClock;

/// A recycling pool of vector clocks.
///
/// The WCP detector enqueues a vector-time snapshot per acquire/release event
/// into per-(lock, thread) FIFO queues (Algorithm 1, lines 3 and 10).  On
/// traces with hundreds of millions of events this causes a large number of
/// short-lived `Vec<u64>` allocations; the pool lets the detector recycle the
/// backing buffers instead of returning them to the allocator.
///
/// # Examples
///
/// ```
/// use rapid_vc::{ClockPool, ThreadId, VectorClock};
///
/// let mut pool = ClockPool::new();
/// let mut clock = pool.take();
/// clock.set(ThreadId::new(0), 1);
/// pool.put(clock);
/// let reused = pool.take();
/// assert!(reused.is_bottom()); // cleared on put, so reuse starts from ⊥
/// ```
#[derive(Debug, Default)]
pub struct ClockPool {
    free: Vec<VectorClock>,
    taken: u64,
    recycled: u64,
}

impl ClockPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        ClockPool::default()
    }

    /// Takes a cleared clock out of the pool (allocating if it is empty).
    pub fn take(&mut self) -> VectorClock {
        self.taken += 1;
        match self.free.pop() {
            Some(clock) => {
                self.recycled += 1;
                debug_assert!(clock.is_bottom(), "pooled clock was not cleared on put");
                clock
            }
            None => VectorClock::bottom(),
        }
    }

    /// Takes a clock holding a copy of `source`.
    pub fn take_copy(&mut self, source: &VectorClock) -> VectorClock {
        let mut clock = self.take();
        clock.copy_from(source);
        clock
    }

    /// Returns a clock to the pool for reuse.
    ///
    /// The clock is cleared *here*, on every `put` path, rather than lazily on
    /// `take`: the free list only ever holds bottom clocks, so a caller that
    /// drops a dirty clock into the pool from an error/early-return path can
    /// never leak stale components into a later `take`.
    pub fn put(&mut self, mut clock: VectorClock) {
        clock.clear();
        self.free.push(clock);
    }

    /// Number of clocks currently sitting in the free list.
    pub fn idle(&self) -> usize {
        self.free.len()
    }

    /// Total number of `take` calls served.
    pub fn taken(&self) -> u64 {
        self.taken
    }

    /// Number of `take` calls served from recycled clocks.
    pub fn recycled(&self) -> u64 {
        self.recycled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadId;

    #[test]
    fn take_from_empty_pool_allocates() {
        let mut pool = ClockPool::new();
        let clock = pool.take();
        assert!(clock.is_bottom());
        assert_eq!(pool.taken(), 1);
        assert_eq!(pool.recycled(), 0);
    }

    #[test]
    fn recycled_clocks_are_cleared() {
        let mut pool = ClockPool::new();
        let mut clock = pool.take();
        clock.set(ThreadId::new(2), 5);
        pool.put(clock);
        assert_eq!(pool.idle(), 1);
        let clock = pool.take();
        assert!(clock.is_bottom());
        assert_eq!(pool.recycled(), 1);
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn put_clears_eagerly() {
        let mut pool = ClockPool::new();
        let mut clock = pool.take();
        clock.set(ThreadId::new(0), 7);
        pool.put(clock);
        // The free list itself only holds bottom clocks; no take() needed to
        // observe the clearing.
        assert!(pool.free.iter().all(VectorClock::is_bottom));
    }

    #[test]
    fn take_copy_copies_contents() {
        let mut pool = ClockPool::new();
        let source = VectorClock::from_components([1, 2, 3]);
        let copy = pool.take_copy(&source);
        assert_eq!(copy, source);
    }
}
