//! Reproduction of Figure 7: windowed-MCM races across the parameter grid.
//!
//! Since PR 2 each benchmark is analyzed in **one pass** of the streaming
//! [`Engine`]: all twelve windowed-MCM grid configurations plus the WCP
//! reference are registered as detectors and fed the event stream together
//! (previously the trace was re-walked 13 times per benchmark).

use std::fmt;

use rapid_engine::Engine;
use rapid_gen::benchmarks;
use rapid_mcm::{McmConfig, McmStream};
use rapid_wcp::WcpStream;

/// The benchmarks Figure 7 plots.
pub const FIGURE7_BENCHMARKS: [&str; 3] = ["eclipse", "ftpserver", "derby"];

/// One point of the Figure 7 grid: a benchmark analyzed with one
/// (window size, solver timeout) configuration.
#[derive(Debug, Clone)]
pub struct Figure7Cell {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// The windowed-MCM configuration used.
    pub config: McmConfig,
    /// Distinct race pairs reported.
    pub races: usize,
}

impl fmt::Display for Figure7Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<10} {:<14} {:>4}", self.benchmark, self.config.label(), self.races)
    }
}

/// The full reproduced figure.
#[derive(Debug, Clone, Default)]
pub struct Figure7Report {
    /// All grid points, grouped by benchmark then configuration.
    pub cells: Vec<Figure7Cell>,
    /// The WCP race count per benchmark at the same scale, for reference
    /// (the figure's point is that no windowed configuration reaches it).
    pub wcp_reference: Vec<(&'static str, usize)>,
}

impl Figure7Report {
    /// The race counts of one benchmark across the grid, in grid order.
    pub fn series(&self, benchmark: &str) -> Vec<usize> {
        self.cells
            .iter()
            .filter(|cell| cell.benchmark == benchmark)
            .map(|cell| cell.races)
            .collect()
    }

    /// Renders the figure as a text table (rows = configurations, columns =
    /// benchmarks), mirroring the bar groups of the paper's Figure 7.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<16}", "config"));
        for benchmark in FIGURE7_BENCHMARKS {
            out.push_str(&format!("{benchmark:>12}"));
        }
        out.push('\n');
        out.push_str(&"-".repeat(16 + 12 * FIGURE7_BENCHMARKS.len()));
        out.push('\n');
        for config in McmConfig::figure7_grid() {
            out.push_str(&format!("{:<16}", config.label()));
            for benchmark in FIGURE7_BENCHMARKS {
                let races = self
                    .cells
                    .iter()
                    .find(|cell| cell.benchmark == benchmark && cell.config == config)
                    .map(|cell| cell.races)
                    .unwrap_or(0);
                out.push_str(&format!("{races:>12}"));
            }
            out.push('\n');
        }
        out.push_str(&format!("{:<16}", "WCP (whole)"));
        for benchmark in FIGURE7_BENCHMARKS {
            let races = self
                .wcp_reference
                .iter()
                .find(|(name, _)| *name == benchmark)
                .map(|(_, races)| *races)
                .unwrap_or(0);
            out.push_str(&format!("{races:>12}"));
        }
        out.push('\n');
        out
    }
}

/// Reproduces Figure 7: sweeps the 12-point grid over the three benchmarks.
///
/// `max_events` caps the size of each generated benchmark trace.
pub fn figure7(max_events: usize) -> Figure7Report {
    let mut report = Figure7Report::default();
    for benchmark in FIGURE7_BENCHMARKS {
        let Some(model) = benchmarks::benchmark_scaled(
            benchmark,
            benchmarks::spec(benchmark)
                .map(|spec| spec.default_scaled_events().min(max_events))
                .unwrap_or(max_events),
        ) else {
            continue;
        };
        // One pass: the WCP reference and every grid cell ride the same
        // event stream.
        let grid = McmConfig::figure7_grid();
        let mut engine = Engine::new();
        engine.register(Box::new(WcpStream::with_threads(model.trace.num_threads())));
        for config in &grid {
            engine.register(Box::new(McmStream::new(config.clone())));
        }
        engine.run_trace(&model.trace);
        let runs = engine.finish(&model.trace);

        report.wcp_reference.push((benchmark, runs[0].outcome.distinct_pairs()));
        for (config, run) in grid.into_iter().zip(&runs[1..]) {
            report.cells.push(Figure7Cell {
                benchmark,
                config,
                races: run.outcome.distinct_pairs(),
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_complete_at_small_scale() {
        let report = figure7(1_500);
        assert_eq!(report.cells.len(), 12 * FIGURE7_BENCHMARKS.len());
        assert_eq!(report.wcp_reference.len(), FIGURE7_BENCHMARKS.len());
        for benchmark in FIGURE7_BENCHMARKS {
            assert_eq!(report.series(benchmark).len(), 12);
        }
        let rendered = report.render();
        assert!(rendered.contains("eclipse"));
        assert!(rendered.contains("w=10K,t=240s"));
    }

    #[test]
    fn windowed_counts_never_exceed_wcp_reference() {
        let report = figure7(2_000);
        for cell in &report.cells {
            let wcp = report
                .wcp_reference
                .iter()
                .find(|(name, _)| *name == cell.benchmark)
                .map(|(_, races)| *races)
                .unwrap_or(0);
            assert!(
                cell.races <= wcp,
                "{}: windowed MCM found more races than whole-trace WCP",
                cell.benchmark
            );
        }
    }
}
