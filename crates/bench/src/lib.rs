//! Benchmark harness regenerating the paper's evaluation artifacts.
//!
//! The paper's evaluation (§4) consists of Table 1 (18 benchmarks × race
//! counts and analysis times for WCP, HB and RVPredict, plus WCP queue
//! occupancy) and Figure 7 (RVPredict race counts across a window-size ×
//! solver-timeout grid for three benchmarks).  This crate contains the
//! harness code shared by:
//!
//! * the `table1` binary — prints the reproduced Table 1;
//! * the `figure7` binary — prints the reproduced Figure 7 series;
//! * the Criterion benches in `benches/` — measure detector throughput and
//!   the scaling behaviour claimed by Theorem 3.
//!
//! The workloads are the deterministic benchmark models from `rapid-gen`
//! (see `DESIGN.md` §4 for the substitution rationale); absolute timings are
//! machine-dependent, but the qualitative shape of the paper's results —
//! which detector finds which races, how the queue occupancy stays tiny, and
//! how windowed analyses degrade — is reproduced.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figure7;
pub mod table1;

pub use figure7::{figure7, Figure7Cell, Figure7Report};
pub use table1::{table1, table1_jobs, table1_row, Table1Report, Table1Row};
