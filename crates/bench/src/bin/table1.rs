//! Regenerates Table 1 of the paper on the modelled benchmark workloads.
//!
//! ```text
//! cargo run --release -p rapid-bench --bin table1 [-- --max-events N] [--benchmark NAME] [--jobs N]
//! cargo run --release -p rapid-bench --bin table1 -- --bench-smoke BENCH.json [--max-events N]
//! cargo run --release -p rapid-bench --bin table1 -- --bench-smoke-dist BENCH.json [--max-events N]
//! ```
//!
//! `--jobs N` analyzes table rows concurrently on the engine's worker pool
//! (row order and race counts are unaffected; per-row timing columns share
//! the machine, so compare timings at the default `--jobs 1`).
//!
//! `--bench-smoke` exercises the PR 4 parallel shard driver: it generates a
//! four-shard moldyn-derived workload (`gen::emit` to binary `.rwf`), runs
//! the merge-layer driver at `jobs = 1` and `jobs = 4`, cross-checks the
//! merged race-pair sets against per-file sequential analysis, and writes a
//! machine-readable JSON point (per-jobs wall-clock, scaling, merged race
//! counts, cross-check verdicts, host parallelism) so the perf trajectory
//! accumulates across PRs.
//!
//! `--bench-smoke-dist` exercises the PR 5 *distributed* front-end over the
//! same four-shard workload: a coordinator on an ephemeral localhost port,
//! two TCP worker loops, and a submit client, timed against local
//! `jobs = 1` and `jobs = 2` runs — cross-checking that all three merged
//! outcomes are equal as whole values (`PartialEq`, metrics included), the
//! distributed ≡ local guarantee.

use std::env;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use rapid_bench::table1::{table1_jobs, table1_row, Table1Report};
use rapid_engine::dist::{self, ServeConfig};
use rapid_engine::driver::{self, DriverConfig, MultiReport};
use rapid_engine::{Detector, DetectorSpec};
use rapid_gen::{benchmarks, emit};

struct Args {
    max_events: usize,
    benchmark: Option<String>,
    bench_smoke: Option<String>,
    bench_smoke_dist: Option<String>,
    jobs: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        max_events: 50_000,
        benchmark: None,
        bench_smoke: None,
        bench_smoke_dist: None,
        jobs: 1,
    };
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-events" => {
                let value = args.next().ok_or("--max-events requires a value")?;
                parsed.max_events =
                    value.parse().map_err(|_| format!("invalid event count {value}"))?;
            }
            "--benchmark" => {
                parsed.benchmark = Some(args.next().ok_or("--benchmark requires a value")?);
            }
            "--bench-smoke" => {
                parsed.bench_smoke =
                    Some(args.next().ok_or("--bench-smoke requires an output path")?);
            }
            "--bench-smoke-dist" => {
                parsed.bench_smoke_dist =
                    Some(args.next().ok_or("--bench-smoke-dist requires an output path")?);
            }
            "--jobs" => {
                let value = args.next().ok_or("--jobs requires a value")?;
                parsed.jobs = value.parse().map_err(|_| format!("invalid job count {value}"))?;
                if parsed.jobs == 0 {
                    return Err("--jobs must be at least 1".to_owned());
                }
            }
            "--help" | "-h" => {
                return Err("usage: table1 [--max-events N] [--benchmark NAME] [--jobs N] \
[--bench-smoke OUT.json] [--bench-smoke-dist OUT.json]"
                    .to_owned())
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(parsed)
}

/// The WCP + HB detector set every shard of the smoke workload runs.
fn smoke_detectors() -> Vec<Box<dyn Detector>> {
    vec![Box::new(rapid_wcp::WcpStream::new()), Box::new(rapid_hb::HbStream::new())]
}

/// Generates the four-shard moldyn-derived workload as binary `.rwf` files,
/// returning the shard paths and their event counts.
fn emit_smoke_shards(max_events: usize) -> Result<(Vec<PathBuf>, Vec<usize>), String> {
    // Four different scales of the same benchmark model: realistic "many
    // logs of one program" sharding, with shard-local interning exercised
    // by each file having its own string tables.
    let scales = [1.0f64, 0.7, 0.5, 0.3];
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let mut paths = Vec::new();
    let mut events = Vec::new();
    for (index, scale) in scales.iter().enumerate() {
        let cap = ((max_events as f64 * scale) as usize).max(1_000);
        let spec = benchmarks::spec("moldyn").ok_or("moldyn spec missing")?;
        let target = spec.default_scaled_events().min(cap);
        let model =
            benchmarks::benchmark_scaled("moldyn", target).ok_or("cannot generate moldyn model")?;
        let path = dir.join(format!("rapid-bench-pr4-moldyn-{index}-{pid}.rwf"));
        emit::write_trace_file(&model.trace, &path)
            .map_err(|error| format!("cannot write {}: {error}", path.display()))?;
        events.push(model.trace.len());
        paths.push(path);
    }
    Ok((paths, events))
}

/// Runs the driver over the shard set at the given job count.
fn drive(paths: &[PathBuf], jobs: usize) -> Result<MultiReport, String> {
    driver::run_shards(paths, smoke_detectors, &DriverConfig { jobs, ..DriverConfig::default() })
        .map_err(|error| format!("driver failed on {error}"))
}

/// Runs the PR 4 bench-smoke: 4-shard workload, jobs=1 vs jobs=4, sequential
/// per-file cross-check, JSON point.
fn run_bench_smoke(out: &str, max_events: usize) -> Result<(), String> {
    let (paths, shard_events) = emit_smoke_shards(max_events)?;
    let cleanup = || {
        for path in &paths {
            std::fs::remove_file(path).ok();
        }
    };
    let result = bench_smoke_inner(out, &paths, &shard_events);
    cleanup();
    result
}

fn bench_smoke_inner(out: &str, paths: &[PathBuf], shard_events: &[usize]) -> Result<(), String> {
    // Untimed warmup (page cache, allocator): one full pass.
    drive(paths, 1)?;

    let jobs1 = drive(paths, 1)?;
    let jobs4 = drive(paths, 4)?;

    // Cross-check 1: jobs=1 and jobs=4 merged outcomes are identical as
    // whole values — race-pair sets, per-pair stats, event totals and every
    // aggregated metric (Outcome implements PartialEq).
    for (left, right) in jobs1.merged.iter().zip(&jobs4.merged) {
        if left.outcome != right.outcome {
            return Err(format!(
                "jobs=1 and jobs=4 merged outcomes diverged for {}",
                left.outcome.detector
            ));
        }
    }
    // Cross-check 2: the merged outcome equals folding sequential per-file
    // runs (the driver with one job *is* the sequential per-file analysis,
    // but assert the outcome algebra end to end: same pairs, summed events).
    if jobs1.total_events() != shard_events.iter().sum::<usize>() {
        return Err("merged event count diverged from the shard sum".to_owned());
    }
    for run in &jobs1.merged {
        if run.outcome.shards != paths.len() {
            return Err(format!(
                "{} merged {} shard(s), expected {}",
                run.outcome.detector,
                run.outcome.shards,
                paths.len()
            ));
        }
    }

    let wall1_ms = jobs1.wall.as_secs_f64() * 1e3;
    let wall4_ms = jobs4.wall.as_secs_f64() * 1e3;
    let speedup = if wall4_ms > 0.0 { wall1_ms / wall4_ms } else { 0.0 };
    let wcp = &jobs1.merged[0].outcome;
    let hb = &jobs1.merged[1].outcome;

    let per_shard: Vec<String> = jobs1
        .shards
        .iter()
        .map(|shard| {
            format!(
                "    {{\"file\": \"{}\", \"events\": {}, \"source\": \"{}\", \
\"wall_ms\": {:.3}}}",
                shard.path.file_name().and_then(|name| name.to_str()).unwrap_or("?"),
                shard.events,
                shard.source,
                shard.wall.as_secs_f64() * 1e3,
            )
        })
        .collect();

    let json = format!(
        "{{\n  \"pr\": 4,\n  \"kind\": \"bench-smoke\",\n  \
\"workload\": \"moldyn x4 shards (.rwf, scales 1.0/0.7/0.5/0.3)\",\n  \
\"detectors\": [\"wcp\", \"hb\"],\n  \
\"host_parallelism\": {host},\n  \
\"shards\": {shards},\n  \"total_events\": {total_events},\n  \
\"jobs1_wall_ms\": {wall1_ms:.3},\n  \"jobs4_wall_ms\": {wall4_ms:.3},\n  \
\"jobs1_to_4_speedup\": {speedup:.3},\n  \
\"merged_wcp_races\": {wcp_races},\n  \"merged_hb_races\": {hb_races},\n  \
\"merged_wcp_race_events\": {wcp_events},\n  \
\"crosscheck_jobs_equal\": true,\n  \"crosscheck_shard_sum\": true,\n  \
\"per_shard\": [\n{per_shard}\n  ]\n}}\n",
        host = driver::available_jobs(),
        shards = paths.len(),
        total_events = jobs1.total_events(),
        wcp_races = wcp.distinct_pairs(),
        hb_races = hb.distinct_pairs(),
        wcp_events = wcp.race_events(),
        per_shard = per_shard.join(",\n"),
    );
    let mut file =
        std::fs::File::create(out).map_err(|error| format!("cannot create {out}: {error}"))?;
    file.write_all(json.as_bytes()).map_err(|error| format!("cannot write {out}: {error}"))?;
    println!("wrote {out}");
    print!("{json}");
    Ok(())
}

/// Runs the PR 5 distributed bench-smoke: the same 4-shard workload, local
/// jobs=1 and jobs=2 vs a coordinator + 2 localhost TCP workers, with the
/// distributed ≡ local equality asserted on whole `Outcome` values.
fn run_bench_smoke_dist(out: &str, max_events: usize) -> Result<(), String> {
    let (paths, shard_events) = emit_smoke_shards(max_events)?;
    let cleanup = || {
        for path in &paths {
            std::fs::remove_file(path).ok();
        }
    };
    let result = bench_smoke_dist_inner(out, &paths, &shard_events);
    cleanup();
    result
}

/// One full distributed pass over `paths`: coordinator + `workers` worker
/// loops + submit, returning the serve-side report.
fn drive_distributed(paths: &[PathBuf], workers: usize) -> Result<MultiReport, String> {
    let spec = DetectorSpec::default(); // wcp + hb, same as smoke_detectors()
    let config = ServeConfig { spec, ..ServeConfig::default() };
    let coordinator = dist::Coordinator::bind(paths, &config)?;
    let addr = coordinator.local_addr().to_string();
    let serving = std::thread::spawn(move || coordinator.run());
    let fleet: Vec<_> = (0..workers)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || dist::work(&addr, Some(1)))
        })
        .collect();
    dist::submit(&addr)?;
    for worker in fleet {
        worker.join().map_err(|_| "worker thread panicked".to_owned())??;
    }
    let served = serving.join().map_err(|_| "serve thread panicked".to_owned())??;
    Ok(served.report)
}

fn bench_smoke_dist_inner(
    out: &str,
    paths: &[PathBuf],
    shard_events: &[usize],
) -> Result<(), String> {
    // Untimed warmup (page cache, allocator): one full local pass.
    drive(paths, 1)?;

    let jobs1 = drive(paths, 1)?;
    let jobs2 = drive(paths, 2)?;
    let distributed = drive_distributed(paths, 2)?;

    // The acceptance cross-check: local jobs=1 ≡ local jobs=2 ≡
    // coordinator + 2 TCP workers, as whole Outcome values (PartialEq,
    // metrics included).
    for (index, baseline) in jobs1.merged.iter().enumerate() {
        for (view, name) in
            [(&jobs2.merged[index], "local jobs=2"), (&distributed.merged[index], "distributed")]
        {
            if baseline.outcome != view.outcome {
                return Err(format!(
                    "{name} merged outcome diverged from local jobs=1 for {}",
                    baseline.outcome.detector
                ));
            }
        }
    }
    if distributed.total_events() != shard_events.iter().sum::<usize>() {
        return Err("distributed event count diverged from the shard sum".to_owned());
    }
    for run in &distributed.merged {
        if run.outcome.shards != paths.len() {
            return Err(format!(
                "{} folded {} shard(s), expected {} (shards-sum invariant)",
                run.outcome.detector,
                run.outcome.shards,
                paths.len()
            ));
        }
    }

    let wall1_ms = jobs1.wall.as_secs_f64() * 1e3;
    let wall2_ms = jobs2.wall.as_secs_f64() * 1e3;
    let dist_ms = distributed.wall.as_secs_f64() * 1e3;
    let wcp = &jobs1.merged[0].outcome;
    let hb = &jobs1.merged[1].outcome;
    let json = format!(
        "{{\n  \"pr\": 5,\n  \"kind\": \"bench-smoke-dist\",\n  \
\"workload\": \"moldyn x4 shards (.rwf, scales 1.0/0.7/0.5/0.3)\",\n  \
\"detectors\": [\"wcp\", \"hb\"],\n  \
\"host_parallelism\": {host},\n  \
\"shards\": {shards},\n  \"total_events\": {total_events},\n  \
\"local_jobs1_wall_ms\": {wall1_ms:.3},\n  \"local_jobs2_wall_ms\": {wall2_ms:.3},\n  \
\"distributed_2worker_wall_ms\": {dist_ms:.3},\n  \
\"distributed_workers\": {workers},\n  \
\"distributed_over_local_jobs2\": {ratio:.3},\n  \
\"merged_wcp_races\": {wcp_races},\n  \"merged_hb_races\": {hb_races},\n  \
\"crosscheck_distributed_equals_local\": true,\n  \
\"crosscheck_shard_sum\": true\n}}\n",
        host = driver::available_jobs(),
        shards = paths.len(),
        total_events = distributed.total_events(),
        workers = distributed.jobs,
        ratio = if wall2_ms > 0.0 { dist_ms / wall2_ms } else { 0.0 },
        wcp_races = wcp.distinct_pairs(),
        hb_races = hb.distinct_pairs(),
    );
    let mut file =
        std::fs::File::create(out).map_err(|error| format!("cannot create {out}: {error}"))?;
    file.write_all(json.as_bytes()).map_err(|error| format!("cannot write {out}: {error}"))?;
    println!("wrote {out}");
    print!("{json}");
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(out) = args.bench_smoke {
        return match run_bench_smoke(&out, args.max_events) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }
    if let Some(out) = args.bench_smoke_dist {
        return match run_bench_smoke_dist(&out, args.max_events) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }

    let report = match args.benchmark {
        Some(name) => match table1_row(&name, args.max_events) {
            Some(row) => Table1Report { rows: vec![row] },
            None => {
                eprintln!("unknown benchmark `{name}`");
                return ExitCode::FAILURE;
            }
        },
        None => table1_jobs(args.max_events, args.jobs),
    };

    println!(
        "Table 1 reproduction (benchmark models scaled to <= {} events, jobs={})",
        args.max_events, args.jobs
    );
    println!("{}", report.render());
    println!(
        "{}/{} rows match the paper's qualitative shape (WCP >= HB, windowed MCM <= WCP, bold rows reproduced)",
        report.rows_matching_paper(),
        report.rows.len()
    );
    for row in &report.rows {
        println!(
            "  {:<14} paper: WCP {:>3} HB {:>3} RVmax {:>3}   measured: WCP {:>3} HB {:>3} RV {:>3}/{:>3}",
            row.spec.name,
            row.spec.wcp_races,
            row.spec.hb_races,
            row.spec.rv_max_races,
            row.wcp_races,
            row.hb_races,
            row.mcm_small_races,
            row.mcm_large_races,
        );
    }
    ExitCode::SUCCESS
}
