//! Regenerates Table 1 of the paper on the modelled benchmark workloads.
//!
//! ```text
//! cargo run --release -p rapid-bench --bin table1 [-- --max-events N] [--benchmark NAME] [--jobs N]
//! cargo run --release -p rapid-bench --bin table1 -- --bench-smoke BENCH.json [--max-events N]
//! cargo run --release -p rapid-bench --bin table1 -- --bench-smoke-dist BENCH.json [--max-events N]
//! ```
//!
//! `--jobs N` analyzes table rows concurrently on the engine's worker pool
//! (row order and race counts are unaffected; per-row timing columns share
//! the machine, so compare timings at the default `--jobs 1`).
//!
//! `--bench-smoke` exercises the PR 4 parallel shard driver: it generates a
//! four-shard moldyn-derived workload (`gen::emit` to binary `.rwf`), runs
//! the merge-layer driver at `jobs = 1` and `jobs = 4`, cross-checks the
//! merged race-pair sets against per-file sequential analysis, and writes a
//! machine-readable JSON point (per-jobs wall-clock, scaling, merged race
//! counts, cross-check verdicts, host parallelism) so the perf trajectory
//! accumulates across PRs.
//!
//! `--bench-smoke-dist` exercises the PR 5 *distributed* front-end over the
//! same four-shard workload: a coordinator on an ephemeral localhost port,
//! two TCP worker loops, and a submit client, timed against local
//! `jobs = 1` and `jobs = 2` runs — cross-checking that all three merged
//! outcomes are equal as whole values (`PartialEq`, metrics included), the
//! distributed ≡ local guarantee.
//!
//! `--bench-smoke-service` exercises the PR 6 *resident* service over the
//! same workload: one coordinator + one two-worker fleet answering two
//! named jobs submitted sequentially (shards streamed over the wire as
//! chunks) without restarting, timing resident submit latency against the
//! one-shot `serve` baseline and a chunked (64 KiB) against a single-frame
//! transfer — each job's merged outcome cross-checked against local
//! `jobs = 2` as whole `Outcome` values.
//!
//! `--bench-smoke-wcp` exercises the PR 7 epoch-fast WCP core: per-detector
//! ns/event on the account and moldyn models (WCP epoch-fast, WCP
//! full-clock reference, HB), the WCP/HB ratio, epoch/pool hit rates, and a
//! race-count cross-check — epoch-fast and reference race counts must be
//! identical and the full Table 1 qualitative shape must stay 18/18.
//!
//! `--bench-smoke-chaos` exercises the PR 8 chaos-hardened transport: the
//! resident chunked-64 KiB submit with the chaos hook compiled in but
//! *off* (the zero-overhead claim, comparable to the PR 6 point), and the
//! same job under a deterministic one-drop schedule — the worker's first
//! leasing connection is cut 1500 bytes into its read direction, mid
//! chunk-stream — timing the recovery (requeue + clean reconnect) and
//! cross-checking both merged outcomes against local `jobs = 2` as whole
//! `Outcome` values.
//!
//! `--bench-smoke-placement` exercises the PR 9 scheduling layer: a cold
//! then warm submit of the same job name against one cache-enabled
//! prefetching fleet (the warm pass must move zero shard bytes — every
//! grant answered `HAVE`), prefetch-on vs prefetch-off resident cycles
//! over a modelled slow link (a 2 ms chaos `Delay` every 64 KiB of the
//! worker's read direction, best of 3), and a speculative straggler
//! recovery — one worker Stalls
//! mid chunk-stream and `speculate-after` re-leases its shard to the
//! clean worker in ~50 ms instead of waiting out the 5 s lease timeout
//! (the PR 8 recovery path) — every point cross-checked against local
//! `jobs = 2` as whole `Outcome` values.

use std::env;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use rapid_bench::table1::{table1_jobs, table1_row, Table1Report};
use rapid_engine::dist::{self, ServeConfig};
use rapid_engine::driver::{self, DriverConfig, MultiReport};
use rapid_engine::{Detector, DetectorSpec};
use rapid_gen::{benchmarks, emit};

struct Args {
    max_events: usize,
    benchmark: Option<String>,
    bench_smoke: Option<String>,
    bench_smoke_dist: Option<String>,
    bench_smoke_service: Option<String>,
    bench_smoke_wcp: Option<String>,
    bench_smoke_chaos: Option<String>,
    bench_smoke_placement: Option<String>,
    jobs: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        max_events: 50_000,
        benchmark: None,
        bench_smoke: None,
        bench_smoke_dist: None,
        bench_smoke_service: None,
        bench_smoke_wcp: None,
        bench_smoke_chaos: None,
        bench_smoke_placement: None,
        jobs: 1,
    };
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-events" => {
                let value = args.next().ok_or("--max-events requires a value")?;
                parsed.max_events =
                    value.parse().map_err(|_| format!("invalid event count {value}"))?;
            }
            "--benchmark" => {
                parsed.benchmark = Some(args.next().ok_or("--benchmark requires a value")?);
            }
            "--bench-smoke" => {
                parsed.bench_smoke =
                    Some(args.next().ok_or("--bench-smoke requires an output path")?);
            }
            "--bench-smoke-dist" => {
                parsed.bench_smoke_dist =
                    Some(args.next().ok_or("--bench-smoke-dist requires an output path")?);
            }
            "--bench-smoke-service" => {
                parsed.bench_smoke_service =
                    Some(args.next().ok_or("--bench-smoke-service requires an output path")?);
            }
            "--bench-smoke-wcp" => {
                parsed.bench_smoke_wcp =
                    Some(args.next().ok_or("--bench-smoke-wcp requires an output path")?);
            }
            "--bench-smoke-chaos" => {
                parsed.bench_smoke_chaos =
                    Some(args.next().ok_or("--bench-smoke-chaos requires an output path")?);
            }
            "--bench-smoke-placement" => {
                parsed.bench_smoke_placement =
                    Some(args.next().ok_or("--bench-smoke-placement requires an output path")?);
            }
            "--jobs" => {
                let value = args.next().ok_or("--jobs requires a value")?;
                parsed.jobs = value.parse().map_err(|_| format!("invalid job count {value}"))?;
                if parsed.jobs == 0 {
                    return Err("--jobs must be at least 1".to_owned());
                }
            }
            "--help" | "-h" => {
                return Err("usage: table1 [--max-events N] [--benchmark NAME] [--jobs N] \
[--bench-smoke OUT.json] [--bench-smoke-dist OUT.json] [--bench-smoke-service OUT.json] \
[--bench-smoke-wcp OUT.json] [--bench-smoke-chaos OUT.json] [--bench-smoke-placement OUT.json]"
                    .to_owned())
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(parsed)
}

/// The WCP + HB detector set every shard of the smoke workload runs.
fn smoke_detectors() -> Vec<Box<dyn Detector>> {
    vec![Box::new(rapid_wcp::WcpStream::new()), Box::new(rapid_hb::HbStream::new())]
}

/// Generates the four-shard moldyn-derived workload as binary `.rwf` files,
/// returning the shard paths and their event counts.
fn emit_smoke_shards(max_events: usize) -> Result<(Vec<PathBuf>, Vec<usize>), String> {
    // Four different scales of the same benchmark model: realistic "many
    // logs of one program" sharding, with shard-local interning exercised
    // by each file having its own string tables.
    let scales = [1.0f64, 0.7, 0.5, 0.3];
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let mut paths = Vec::new();
    let mut events = Vec::new();
    for (index, scale) in scales.iter().enumerate() {
        let cap = ((max_events as f64 * scale) as usize).max(1_000);
        let spec = benchmarks::spec("moldyn").ok_or("moldyn spec missing")?;
        let target = spec.default_scaled_events().min(cap);
        let model =
            benchmarks::benchmark_scaled("moldyn", target).ok_or("cannot generate moldyn model")?;
        let path = dir.join(format!("rapid-bench-pr4-moldyn-{index}-{pid}.rwf"));
        emit::write_trace_file(&model.trace, &path)
            .map_err(|error| format!("cannot write {}: {error}", path.display()))?;
        events.push(model.trace.len());
        paths.push(path);
    }
    Ok((paths, events))
}

/// Runs the driver over the shard set at the given job count.
fn drive(paths: &[PathBuf], jobs: usize) -> Result<MultiReport, String> {
    driver::run_shards(paths, smoke_detectors, &DriverConfig { jobs, ..DriverConfig::default() })
        .map_err(|error| format!("driver failed on {error}"))
}

/// Runs the PR 4 bench-smoke: 4-shard workload, jobs=1 vs jobs=4, sequential
/// per-file cross-check, JSON point.
fn run_bench_smoke(out: &str, max_events: usize) -> Result<(), String> {
    let (paths, shard_events) = emit_smoke_shards(max_events)?;
    let cleanup = || {
        for path in &paths {
            std::fs::remove_file(path).ok();
        }
    };
    let result = bench_smoke_inner(out, &paths, &shard_events);
    cleanup();
    result
}

fn bench_smoke_inner(out: &str, paths: &[PathBuf], shard_events: &[usize]) -> Result<(), String> {
    // Untimed warmup (page cache, allocator): one full pass.
    drive(paths, 1)?;

    let jobs1 = drive(paths, 1)?;
    let jobs4 = drive(paths, 4)?;

    // Cross-check 1: jobs=1 and jobs=4 merged outcomes are identical as
    // whole values — race-pair sets, per-pair stats, event totals and every
    // aggregated metric (Outcome implements PartialEq).
    for (left, right) in jobs1.merged.iter().zip(&jobs4.merged) {
        if left.outcome != right.outcome {
            return Err(format!(
                "jobs=1 and jobs=4 merged outcomes diverged for {}",
                left.outcome.detector
            ));
        }
    }
    // Cross-check 2: the merged outcome equals folding sequential per-file
    // runs (the driver with one job *is* the sequential per-file analysis,
    // but assert the outcome algebra end to end: same pairs, summed events).
    if jobs1.total_events() != shard_events.iter().sum::<usize>() {
        return Err("merged event count diverged from the shard sum".to_owned());
    }
    for run in &jobs1.merged {
        if run.outcome.shards != paths.len() {
            return Err(format!(
                "{} merged {} shard(s), expected {}",
                run.outcome.detector,
                run.outcome.shards,
                paths.len()
            ));
        }
    }

    let wall1_ms = jobs1.wall.as_secs_f64() * 1e3;
    let wall4_ms = jobs4.wall.as_secs_f64() * 1e3;
    let speedup = if wall4_ms > 0.0 { wall1_ms / wall4_ms } else { 0.0 };
    let wcp = &jobs1.merged[0].outcome;
    let hb = &jobs1.merged[1].outcome;

    let per_shard: Vec<String> = jobs1
        .shards
        .iter()
        .map(|shard| {
            format!(
                "    {{\"file\": \"{}\", \"events\": {}, \"source\": \"{}\", \
\"wall_ms\": {:.3}}}",
                shard.path.file_name().and_then(|name| name.to_str()).unwrap_or("?"),
                shard.events,
                shard.source,
                shard.wall.as_secs_f64() * 1e3,
            )
        })
        .collect();

    let json = format!(
        "{{\n  \"pr\": 4,\n  \"kind\": \"bench-smoke\",\n  \
\"workload\": \"moldyn x4 shards (.rwf, scales 1.0/0.7/0.5/0.3)\",\n  \
\"detectors\": [\"wcp\", \"hb\"],\n  \
\"host_parallelism\": {host},\n  \
\"shards\": {shards},\n  \"total_events\": {total_events},\n  \
\"jobs1_wall_ms\": {wall1_ms:.3},\n  \"jobs4_wall_ms\": {wall4_ms:.3},\n  \
\"jobs1_to_4_speedup\": {speedup:.3},\n  \
\"merged_wcp_races\": {wcp_races},\n  \"merged_hb_races\": {hb_races},\n  \
\"merged_wcp_race_events\": {wcp_events},\n  \
\"crosscheck_jobs_equal\": true,\n  \"crosscheck_shard_sum\": true,\n  \
\"per_shard\": [\n{per_shard}\n  ]\n}}\n",
        host = driver::available_jobs(),
        shards = paths.len(),
        total_events = jobs1.total_events(),
        wcp_races = wcp.distinct_pairs(),
        hb_races = hb.distinct_pairs(),
        wcp_events = wcp.race_events(),
        per_shard = per_shard.join(",\n"),
    );
    let mut file =
        std::fs::File::create(out).map_err(|error| format!("cannot create {out}: {error}"))?;
    file.write_all(json.as_bytes()).map_err(|error| format!("cannot write {out}: {error}"))?;
    println!("wrote {out}");
    print!("{json}");
    Ok(())
}

/// Runs the PR 5 distributed bench-smoke: the same 4-shard workload, local
/// jobs=1 and jobs=2 vs a coordinator + 2 localhost TCP workers, with the
/// distributed ≡ local equality asserted on whole `Outcome` values.
fn run_bench_smoke_dist(out: &str, max_events: usize) -> Result<(), String> {
    let (paths, shard_events) = emit_smoke_shards(max_events)?;
    let cleanup = || {
        for path in &paths {
            std::fs::remove_file(path).ok();
        }
    };
    let result = bench_smoke_dist_inner(out, &paths, &shard_events);
    cleanup();
    result
}

/// Spawns a fleet of single-threaded worker loops against `addr`.
fn spawn_fleet(
    addr: &str,
    workers: usize,
) -> Vec<std::thread::JoinHandle<Result<dist::WorkSummary, String>>> {
    (0..workers)
        .map(|_| {
            let addr = addr.to_owned();
            let config = dist::WorkConfig { jobs: Some(1), ..dist::WorkConfig::default() };
            std::thread::spawn(move || dist::work(&addr, &config))
        })
        .collect()
}

/// One full distributed pass over `paths`: a one-shot coordinator +
/// `workers` worker loops + a submit that fetches the default job,
/// returning the serve-side report.
fn drive_distributed(paths: &[PathBuf], workers: usize) -> Result<MultiReport, String> {
    let spec = DetectorSpec::default(); // wcp + hb, same as smoke_detectors()
    let config = ServeConfig { spec, once: true, ..ServeConfig::default() };
    let coordinator = dist::Coordinator::bind(paths, &config)?;
    let addr = coordinator.local_addr().to_string();
    let serving = std::thread::spawn(move || coordinator.run());
    let fleet = spawn_fleet(&addr, workers);
    dist::submit(&addr, &dist::SubmitConfig::default())?;
    for worker in fleet {
        worker.join().map_err(|_| "worker thread panicked".to_owned())??;
    }
    let summary = serving.join().map_err(|_| "serve thread panicked".to_owned())??;
    let job = summary.jobs.into_iter().next().ok_or("serve answered no jobs")?;
    job.result
}

fn bench_smoke_dist_inner(
    out: &str,
    paths: &[PathBuf],
    shard_events: &[usize],
) -> Result<(), String> {
    // Untimed warmup (page cache, allocator): one full local pass.
    drive(paths, 1)?;

    let jobs1 = drive(paths, 1)?;
    let jobs2 = drive(paths, 2)?;
    let distributed = drive_distributed(paths, 2)?;

    // The acceptance cross-check: local jobs=1 ≡ local jobs=2 ≡
    // coordinator + 2 TCP workers, as whole Outcome values (PartialEq,
    // metrics included).
    for (index, baseline) in jobs1.merged.iter().enumerate() {
        for (view, name) in
            [(&jobs2.merged[index], "local jobs=2"), (&distributed.merged[index], "distributed")]
        {
            if baseline.outcome != view.outcome {
                return Err(format!(
                    "{name} merged outcome diverged from local jobs=1 for {}",
                    baseline.outcome.detector
                ));
            }
        }
    }
    if distributed.total_events() != shard_events.iter().sum::<usize>() {
        return Err("distributed event count diverged from the shard sum".to_owned());
    }
    for run in &distributed.merged {
        if run.outcome.shards != paths.len() {
            return Err(format!(
                "{} folded {} shard(s), expected {} (shards-sum invariant)",
                run.outcome.detector,
                run.outcome.shards,
                paths.len()
            ));
        }
    }

    let wall1_ms = jobs1.wall.as_secs_f64() * 1e3;
    let wall2_ms = jobs2.wall.as_secs_f64() * 1e3;
    let dist_ms = distributed.wall.as_secs_f64() * 1e3;
    let wcp = &jobs1.merged[0].outcome;
    let hb = &jobs1.merged[1].outcome;
    let json = format!(
        "{{\n  \"pr\": 5,\n  \"kind\": \"bench-smoke-dist\",\n  \
\"workload\": \"moldyn x4 shards (.rwf, scales 1.0/0.7/0.5/0.3)\",\n  \
\"detectors\": [\"wcp\", \"hb\"],\n  \
\"host_parallelism\": {host},\n  \
\"shards\": {shards},\n  \"total_events\": {total_events},\n  \
\"local_jobs1_wall_ms\": {wall1_ms:.3},\n  \"local_jobs2_wall_ms\": {wall2_ms:.3},\n  \
\"distributed_2worker_wall_ms\": {dist_ms:.3},\n  \
\"distributed_workers\": {workers},\n  \
\"distributed_over_local_jobs2\": {ratio:.3},\n  \
\"merged_wcp_races\": {wcp_races},\n  \"merged_hb_races\": {hb_races},\n  \
\"crosscheck_distributed_equals_local\": true,\n  \
\"crosscheck_shard_sum\": true\n}}\n",
        host = driver::available_jobs(),
        shards = paths.len(),
        total_events = distributed.total_events(),
        workers = distributed.jobs,
        ratio = if wall2_ms > 0.0 { dist_ms / wall2_ms } else { 0.0 },
        wcp_races = wcp.distinct_pairs(),
        hb_races = hb.distinct_pairs(),
    );
    let mut file =
        std::fs::File::create(out).map_err(|error| format!("cannot create {out}: {error}"))?;
    file.write_all(json.as_bytes()).map_err(|error| format!("cannot write {out}: {error}"))?;
    println!("wrote {out}");
    print!("{json}");
    Ok(())
}

/// Runs the PR 6 resident-service bench-smoke: one long-running coordinator
/// and 2 resident TCP workers answering two named jobs over the same shard
/// set (single-frame vs 64 KiB chunked transfer), timed against a one-shot
/// serve cycle and cross-checked against local jobs=2.
fn run_bench_smoke_service(out: &str, max_events: usize) -> Result<(), String> {
    let (paths, shard_events) = emit_smoke_shards(max_events)?;
    let cleanup = || {
        for path in &paths {
            std::fs::remove_file(path).ok();
        }
    };
    let result = bench_smoke_service_inner(out, &paths, &shard_events);
    cleanup();
    result
}

/// Opens a named job over `paths` on the resident coordinator at `addr`,
/// streams the shards at `chunk_len`, and returns the merged report plus
/// the submit-side wall clock (open → streamed → folded report).
fn submit_job(
    addr: &str,
    job: &str,
    paths: &[PathBuf],
    chunk_len: usize,
) -> Result<(dist::SubmitReport, f64), String> {
    let config = dist::SubmitConfig {
        job: Some(job.to_owned()),
        paths: paths.to_vec(),
        chunk_len,
        ..dist::SubmitConfig::default()
    };
    let started = std::time::Instant::now();
    let report = dist::submit(addr, &config)?;
    Ok((report, started.elapsed().as_secs_f64() * 1e3))
}

fn bench_smoke_service_inner(
    out: &str,
    paths: &[PathBuf],
    shard_events: &[usize],
) -> Result<(), String> {
    // Untimed warmup (page cache, allocator): one full local pass.
    drive(paths, 1)?;
    let local = drive(paths, 2)?;

    // Baseline: a full one-shot cycle (bind + fleet spin-up + default-job
    // fetch + drain), the PR 5 deployment model.
    let oneshot_started = std::time::Instant::now();
    let oneshot = drive_distributed(paths, 2)?;
    let oneshot_ms = oneshot_started.elapsed().as_secs_f64() * 1e3;

    // Resident service: bind with no pre-registered shards, keep one fleet
    // of 2 workers alive, and answer two named jobs over the same shard
    // set — "bulk" ships each shard as a single chunk, "chunked" streams
    // 64 KiB chunks (multi-chunk on every shard of this workload).
    let config = ServeConfig { spec: DetectorSpec::default(), ..ServeConfig::default() };
    let coordinator = dist::Coordinator::bind(&[], &config)?;
    let addr = coordinator.local_addr().to_string();
    let serving = std::thread::spawn(move || coordinator.run());
    let fleet: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || dist::work(&addr, &dist::WorkConfig::default()))
        })
        .collect();

    let run = || -> Result<_, String> {
        let (bulk, bulk_ms) = submit_job(&addr, "bulk", paths, 1 << 30)?;
        let (chunked, chunked_ms) = submit_job(&addr, "chunked", paths, 64 << 10)?;
        Ok((bulk, bulk_ms, chunked, chunked_ms))
    };
    let submitted = run();
    // Drain the fleet whether the jobs succeeded or not, then surface the
    // first failure.
    let shutdown = dist::shutdown(&addr);
    for worker in fleet {
        worker.join().map_err(|_| "worker thread panicked".to_owned())??;
    }
    let summary = serving.join().map_err(|_| "serve thread panicked".to_owned())??;
    let (bulk, bulk_ms, chunked, chunked_ms) = submitted?;
    shutdown?;

    // The acceptance cross-check: every view of the workload — local
    // jobs=2, the one-shot cycle, and both resident jobs — folds to the
    // same merged Outcome values (PartialEq, metrics included).
    for (index, baseline) in local.merged.iter().enumerate() {
        for (view, name) in [
            (&oneshot.merged[index], "one-shot"),
            (&bulk.merged[index], "resident job bulk"),
            (&chunked.merged[index], "resident job chunked"),
        ] {
            if baseline.outcome != view.outcome {
                return Err(format!(
                    "{name} merged outcome diverged from local jobs=2 for {}",
                    baseline.outcome.detector
                ));
            }
        }
    }
    if bulk.events != shard_events.iter().sum::<usize>() {
        return Err("resident job event count diverged from the shard sum".to_owned());
    }
    if summary.jobs.len() != 2 {
        return Err(format!("serve summary has {} job(s), expected 2", summary.jobs.len()));
    }
    for job in &summary.jobs {
        job.result.as_ref().map_err(|error| format!("job {} failed: {error}", job.name))?;
    }

    let wcp = &local.merged[0].outcome;
    let hb = &local.merged[1].outcome;
    let json = format!(
        "{{\n  \"pr\": 6,\n  \"kind\": \"bench-smoke-service\",\n  \
\"workload\": \"moldyn x4 shards (.rwf, scales 1.0/0.7/0.5/0.3)\",\n  \
\"detectors\": [\"wcp\", \"hb\"],\n  \
\"host_parallelism\": {host},\n  \
\"shards\": {shards},\n  \"total_events\": {total_events},\n  \
\"local_jobs2_wall_ms\": {local_ms:.3},\n  \
\"oneshot_cycle_wall_ms\": {oneshot_ms:.3},\n  \
\"resident_submit_singleframe_wall_ms\": {bulk_ms:.3},\n  \
\"resident_submit_chunked64k_wall_ms\": {chunked_ms:.3},\n  \
\"resident_over_oneshot\": {ratio:.3},\n  \
\"chunked_over_singleframe\": {chunk_ratio:.3},\n  \
\"merged_wcp_races\": {wcp_races},\n  \"merged_hb_races\": {hb_races},\n  \
\"crosscheck_service_equals_local\": true,\n  \
\"crosscheck_shard_sum\": true\n}}\n",
        host = driver::available_jobs(),
        shards = paths.len(),
        total_events = bulk.events,
        local_ms = local.wall.as_secs_f64() * 1e3,
        ratio = if oneshot_ms > 0.0 { bulk_ms / oneshot_ms } else { 0.0 },
        chunk_ratio = if bulk_ms > 0.0 { chunked_ms / bulk_ms } else { 0.0 },
        wcp_races = wcp.distinct_pairs(),
        hb_races = hb.distinct_pairs(),
    );
    let mut file =
        std::fs::File::create(out).map_err(|error| format!("cannot create {out}: {error}"))?;
    file.write_all(json.as_bytes()).map_err(|error| format!("cannot write {out}: {error}"))?;
    println!("wrote {out}");
    print!("{json}");
    Ok(())
}

/// Runs the PR 8 chaos bench-smoke: the resident chunked submit with the
/// chaos hook off (overhead claim) vs the same job under a deterministic
/// one-drop schedule (recovery claim), both cross-checked against local
/// `jobs = 2`.
fn run_bench_smoke_chaos(out: &str, max_events: usize) -> Result<(), String> {
    let (paths, shard_events) = emit_smoke_shards(max_events)?;
    let cleanup = || {
        for path in &paths {
            std::fs::remove_file(path).ok();
        }
    };
    let result = bench_smoke_chaos_inner(out, &paths, &shard_events);
    cleanup();
    result
}

/// One resident service cycle: bind, run one worker fleet (each worker
/// under `worker_config`), submit one chunked-64 KiB job, drain.  Returns
/// the job's report and the submit-side wall clock.
fn resident_cycle(
    paths: &[PathBuf],
    workers: usize,
    worker_config: &dist::WorkConfig,
    lease_timeout: std::time::Duration,
) -> Result<(dist::SubmitReport, f64), String> {
    let config =
        ServeConfig { spec: DetectorSpec::default(), lease_timeout, ..ServeConfig::default() };
    let coordinator = dist::Coordinator::bind(&[], &config)?;
    let addr = coordinator.local_addr().to_string();
    let serving = std::thread::spawn(move || coordinator.run());
    let fleet: Vec<_> = (0..workers)
        .map(|_| {
            let addr = addr.clone();
            let config = worker_config.clone();
            std::thread::spawn(move || dist::work(&addr, &config))
        })
        .collect();
    let submitted = submit_job(&addr, "chaos-point", paths, 64 << 10);
    let shutdown = dist::shutdown(&addr);
    for worker in fleet {
        worker.join().map_err(|_| "worker thread panicked".to_owned())??;
    }
    serving.join().map_err(|_| "serve thread panicked".to_owned())??;
    shutdown?;
    submitted
}

fn bench_smoke_chaos_inner(
    out: &str,
    paths: &[PathBuf],
    shard_events: &[usize],
) -> Result<(), String> {
    // Untimed warmup (page cache, allocator): one full local pass.
    drive(paths, 1)?;
    let local = drive(paths, 2)?;

    // Point 1 — chaos off: the resident chunked-64 KiB submit over the v3
    // checksummed transport with the (compiled-in, default-off) chaos hook.
    // Comparable to the PR 6 resident chunked point: the hook must cost
    // nothing when off.
    let clean_config = dist::WorkConfig { jobs: Some(1), ..dist::WorkConfig::default() };
    let (clean, clean_ms) =
        resident_cycle(paths, 2, &clean_config, std::time::Duration::from_secs(60))?;

    // Point 2 — recovery under a deterministic one-drop schedule: the
    // single worker's first leasing connection is cut 1500 bytes into its
    // read direction (mid chunk-stream of the first granted shard); the
    // coordinator requeues on the disconnect and the retry budget brings a
    // clean connection back.
    let one_drop = dist::FaultPlan::clean().with_read(1500, dist::FaultAction::Cut);
    let chaotic_config = dist::WorkConfig {
        jobs: Some(1),
        retries: 3,
        retry_max_wait: std::time::Duration::from_millis(250),
        chaos: dist::ChaosConfig::scripted(vec![one_drop]),
        ..dist::WorkConfig::default()
    };
    let (recovered, recovery_ms) =
        resident_cycle(paths, 1, &chaotic_config, std::time::Duration::from_secs(5))?;

    // The acceptance cross-check: both the chaos-off and the recovered
    // runs fold to the local jobs=2 outcome exactly.
    for (index, baseline) in local.merged.iter().enumerate() {
        for (view, name) in
            [(&clean.merged[index], "chaos-off"), (&recovered.merged[index], "one-drop recovery")]
        {
            if baseline.outcome != view.outcome {
                return Err(format!(
                    "{name} merged outcome diverged from local jobs=2 for {}",
                    baseline.outcome.detector
                ));
            }
        }
    }
    if clean.events != shard_events.iter().sum::<usize>()
        || recovered.events != shard_events.iter().sum::<usize>()
    {
        return Err("chaos bench event count diverged from the shard sum".to_owned());
    }

    let wcp = &local.merged[0].outcome;
    let hb = &local.merged[1].outcome;
    let json = format!(
        "{{\n  \"pr\": 8,\n  \"kind\": \"bench-smoke-chaos\",\n  \
\"workload\": \"moldyn x4 shards (.rwf, scales 1.0/0.7/0.5/0.3)\",\n  \
\"detectors\": [\"wcp\", \"hb\"],\n  \
\"host_parallelism\": {host},\n  \
\"shards\": {shards},\n  \"total_events\": {total_events},\n  \
\"local_jobs2_wall_ms\": {local_ms:.3},\n  \
\"chaos_off_chunked64k_wall_ms\": {clean_ms:.3},\n  \
\"recovery_1drop_chunked64k_wall_ms\": {recovery_ms:.3},\n  \
\"recovery_over_chaos_off\": {ratio:.3},\n  \
\"fault_schedule\": \"worker connection 0: read Cut at byte 1500\",\n  \
\"merged_wcp_races\": {wcp_races},\n  \"merged_hb_races\": {hb_races},\n  \
\"crosscheck_chaos_off_equals_local\": true,\n  \
\"crosscheck_recovery_equals_local\": true,\n  \
\"crosscheck_shard_sum\": true\n}}\n",
        host = driver::available_jobs(),
        shards = paths.len(),
        total_events = clean.events,
        local_ms = local.wall.as_secs_f64() * 1e3,
        ratio = if clean_ms > 0.0 { recovery_ms / clean_ms } else { 0.0 },
        wcp_races = wcp.distinct_pairs(),
        hb_races = hb.distinct_pairs(),
    );
    let mut file =
        std::fs::File::create(out).map_err(|error| format!("cannot create {out}: {error}"))?;
    file.write_all(json.as_bytes()).map_err(|error| format!("cannot write {out}: {error}"))?;
    println!("wrote {out}");
    print!("{json}");
    Ok(())
}

/// Runs the PR 9 placement bench-smoke: cold vs warm submit against one
/// cache-enabled prefetching fleet, prefetch on vs off, and a speculative
/// straggler recovery, all cross-checked against local `jobs = 2`.
fn run_bench_smoke_placement(out: &str, max_events: usize) -> Result<(), String> {
    let (paths, shard_events) = emit_smoke_shards(max_events)?;
    let cleanup = || {
        for path in &paths {
            std::fs::remove_file(path).ok();
        }
    };
    let result = bench_smoke_placement_inner(out, &paths, &shard_events);
    cleanup();
    result
}

/// One resident cycle with speculation armed and one scripted straggler:
/// worker 0's first leasing connection Stalls 1500 bytes into its read
/// direction (mid chunk-stream of its first granted shard) while worker 1
/// stays clean, so the coordinator re-leases the stalled shard to the
/// clean worker once it has been in flight 50 ms — instead of waiting out
/// the 5 s lease timeout, the PR 8 recovery path.  Returns the job's
/// report and the submit-side wall clock.
fn speculative_cycle(paths: &[PathBuf]) -> Result<(dist::SubmitReport, f64), String> {
    let config = ServeConfig {
        spec: DetectorSpec::default(),
        lease_timeout: std::time::Duration::from_secs(5),
        speculate_after: Some(std::time::Duration::from_millis(50)),
        ..ServeConfig::default()
    };
    let coordinator = dist::Coordinator::bind(&[], &config)?;
    let addr = coordinator.local_addr().to_string();
    let serving = std::thread::spawn(move || coordinator.run());
    let stall = dist::FaultPlan::clean().with_read(1500, dist::FaultAction::Stall);
    let straggler_config = dist::WorkConfig {
        jobs: Some(1),
        retries: 1,
        patience: Some(std::time::Duration::from_secs(2)),
        chaos: dist::ChaosConfig::scripted(vec![stall]),
        ..dist::WorkConfig::default()
    };
    let straggler = {
        let addr = addr.clone();
        std::thread::spawn(move || dist::work(&addr, &straggler_config))
    };
    // Let the straggler park its LEASE first so it deterministically holds
    // a shard when the clean worker drains the rest of the queue.
    std::thread::sleep(std::time::Duration::from_millis(100));
    let clean_config = dist::WorkConfig { jobs: Some(1), ..dist::WorkConfig::default() };
    let clean = {
        let addr = addr.clone();
        std::thread::spawn(move || dist::work(&addr, &clean_config))
    };
    let submitted = submit_job(&addr, "speculate", paths, 64 << 10);
    let shutdown = dist::shutdown(&addr);
    // The straggler is sacrificial: it wakes from the stall after its 2 s
    // patience, and by then the service is draining — its own summary may
    // be an error, which is fine as long as the job itself folded.
    let _ = straggler.join().map_err(|_| "straggler thread panicked".to_owned())?;
    clean.join().map_err(|_| "clean worker thread panicked".to_owned())??;
    serving.join().map_err(|_| "serve thread panicked".to_owned())??;
    shutdown?;
    submitted
}

fn bench_smoke_placement_inner(
    out: &str,
    paths: &[PathBuf],
    shard_events: &[usize],
) -> Result<(), String> {
    // Untimed warmup (page cache, allocator): one full local pass.
    drive(paths, 1)?;
    let local = drive(paths, 2)?;
    let total_bytes: u64 = paths
        .iter()
        .map(|path| {
            std::fs::metadata(path)
                .map(|meta| meta.len())
                .map_err(|error| format!("cannot stat {}: {error}", path.display()))
        })
        .sum::<Result<u64, String>>()?;

    // Points 1 + 2 — cold vs warm against one resident fleet: a single
    // worker process with two connections sharing one 64 MiB cache,
    // prefetch on.  The warm pass re-opens the same job name over the
    // same bytes, so every grant must come back `HAVE` and zero shard
    // bytes may cross the wire.
    let config = ServeConfig { spec: DetectorSpec::default(), ..ServeConfig::default() };
    let coordinator = dist::Coordinator::bind(&[], &config)?;
    let addr = coordinator.local_addr().to_string();
    let serving = std::thread::spawn(move || coordinator.run());
    let worker = {
        let addr = addr.clone();
        let config = dist::WorkConfig {
            jobs: Some(2),
            cache_bytes: 64 << 20,
            prefetch: true,
            ..dist::WorkConfig::default()
        };
        std::thread::spawn(move || dist::work(&addr, &config))
    };
    let run = || -> Result<_, String> {
        let (cold, cold_ms) = submit_job(&addr, "placement", paths, 64 << 10)?;
        let (warm, warm_ms) = submit_job(&addr, "placement", paths, 64 << 10)?;
        Ok((cold, cold_ms, warm, warm_ms))
    };
    let submitted = run();
    let shutdown = dist::shutdown(&addr);
    worker.join().map_err(|_| "worker thread panicked".to_owned())??;
    serving.join().map_err(|_| "serve thread panicked".to_owned())??;
    let (cold, cold_ms, warm, warm_ms) = submitted?;
    shutdown?;

    let metric = |report: &dist::SubmitReport, name: &str| -> Result<f64, String> {
        report.scheduling.get(name).ok_or_else(|| format!("scheduling metric {name} missing"))
    };
    let cold_bytes = metric(&cold, "bytes_transferred")?;
    let warm_bytes = metric(&warm, "bytes_transferred")?;
    let warm_hits = metric(&warm, "cache_hits")?;
    if cold_bytes != total_bytes as f64 {
        return Err(format!(
            "cold submit transferred {cold_bytes} shard byte(s), expected {total_bytes}"
        ));
    }
    if warm_bytes != 0.0 || warm_hits != paths.len() as f64 {
        return Err(format!(
            "warm submit transferred {warm_bytes} byte(s) with {warm_hits} cache hit(s), \
expected 0 bytes and {} hits",
            paths.len()
        ));
    }

    // Point 3 — prefetch on vs off over a modelled slow link, best of 3
    // cold resident cycles each (no cache, one single-connection worker).
    // On loopback the transfer is pure CPU, so on a single core there is
    // no latency for the pipeline to hide; a scripted 2 ms chaos Delay
    // every 64 KiB of the worker's read direction models the link latency
    // prefetch exists for — identical schedule in both modes, and with it
    // the chunk stream of lease N+1 sleeps while lease N analyzes.
    let mut slow_link = dist::FaultPlan::clean();
    let mut anchor = 64u64 << 10;
    while anchor < total_bytes {
        slow_link = slow_link.with_read(anchor, dist::FaultAction::Delay { millis: 2 });
        anchor += 64 << 10;
    }
    let prefetch_on = dist::WorkConfig {
        jobs: Some(1),
        prefetch: true,
        chaos: dist::ChaosConfig::scripted(vec![slow_link.clone()]),
        ..Default::default()
    };
    let prefetch_off = dist::WorkConfig {
        jobs: Some(1),
        chaos: dist::ChaosConfig::scripted(vec![slow_link]),
        ..Default::default()
    };
    let mut on_ms = f64::INFINITY;
    let mut off_ms = f64::INFINITY;
    let mut pipelined = Vec::new();
    let mut blocking = Vec::new();
    for _ in 0..3 {
        let (report, ms) =
            resident_cycle(paths, 1, &prefetch_on, std::time::Duration::from_secs(60))?;
        on_ms = on_ms.min(ms);
        pipelined.push(report);
        let (report, ms) =
            resident_cycle(paths, 1, &prefetch_off, std::time::Duration::from_secs(60))?;
        off_ms = off_ms.min(ms);
        blocking.push(report);
    }

    // Point 4 — speculative straggler recovery, against PR 8's measured
    // lease-expiry recovery (BENCH_pr8.json, same container: ~262 ms).
    let (stolen_report, recovery_ms) = speculative_cycle(paths)?;
    let stolen = metric(&stolen_report, "leases_stolen")?;
    if stolen < 1.0 {
        return Err("the speculative cycle never re-leased the stalled shard".to_owned());
    }

    // The acceptance cross-check: every distributed view folds to the
    // local jobs=2 outcome exactly.
    let mut views: Vec<(&dist::SubmitReport, String)> = vec![
        (&cold, "cold submit".to_owned()),
        (&warm, "warm submit".to_owned()),
        (&stolen_report, "speculative recovery".to_owned()),
    ];
    for (round, report) in pipelined.iter().enumerate() {
        views.push((report, format!("prefetch-on round {round}")));
    }
    for (round, report) in blocking.iter().enumerate() {
        views.push((report, format!("prefetch-off round {round}")));
    }
    for (index, baseline) in local.merged.iter().enumerate() {
        for (view, name) in &views {
            if baseline.outcome != view.merged[index].outcome {
                return Err(format!(
                    "{name} merged outcome diverged from local jobs=2 for {}",
                    baseline.outcome.detector
                ));
            }
        }
    }
    for (view, name) in &views {
        if view.events != shard_events.iter().sum::<usize>() {
            return Err(format!("{name} event count diverged from the shard sum"));
        }
    }

    let wcp = &local.merged[0].outcome;
    let hb = &local.merged[1].outcome;
    let json = format!(
        "{{\n  \"pr\": 9,\n  \"kind\": \"bench-smoke-placement\",\n  \
\"workload\": \"moldyn x4 shards (.rwf, scales 1.0/0.7/0.5/0.3)\",\n  \
\"detectors\": [\"wcp\", \"hb\"],\n  \
\"host_parallelism\": {host},\n  \
\"shards\": {shards},\n  \"total_events\": {total_events},\n  \
\"total_shard_bytes\": {total_bytes},\n  \
\"local_jobs2_wall_ms\": {local_ms:.3},\n  \
\"cold_submit_wall_ms\": {cold_ms:.3},\n  \
\"warm_submit_wall_ms\": {warm_ms:.3},\n  \
\"warm_over_cold\": {warm_ratio:.3},\n  \
\"cold_bytes_transferred\": {cold_bytes},\n  \
\"warm_bytes_transferred\": {warm_bytes},\n  \
\"warm_cache_hits\": {warm_hits},\n  \
\"prefetch_on_wall_ms\": {on_ms:.3},\n  \
\"prefetch_off_wall_ms\": {off_ms:.3},\n  \
\"prefetch_over_off\": {prefetch_ratio:.3},\n  \
\"prefetch_link_model\": \"read Delay 2 ms per 64 KiB, one worker, best of 3\",\n  \
\"speculative_recovery_wall_ms\": {recovery_ms:.3},\n  \
\"leases_stolen\": {stolen},\n  \
\"fault_schedule\": \"straggler connection 0: read Stall at byte 1500; speculate-after 50 ms, \
lease-timeout 5 s\",\n  \
\"pr8_lease_expiry_recovery_wall_ms\": 262.0,\n  \
\"merged_wcp_races\": {wcp_races},\n  \"merged_hb_races\": {hb_races},\n  \
\"crosscheck_placement_equals_local\": true,\n  \
\"crosscheck_warm_zero_bytes\": true,\n  \
\"crosscheck_shard_sum\": true\n}}\n",
        host = driver::available_jobs(),
        shards = paths.len(),
        total_events = cold.events,
        local_ms = local.wall.as_secs_f64() * 1e3,
        warm_ratio = if cold_ms > 0.0 { warm_ms / cold_ms } else { 0.0 },
        prefetch_ratio = if off_ms > 0.0 { on_ms / off_ms } else { 0.0 },
        wcp_races = wcp.distinct_pairs(),
        hb_races = hb.distinct_pairs(),
    );
    let mut file =
        std::fs::File::create(out).map_err(|error| format!("cannot create {out}: {error}"))?;
    file.write_all(json.as_bytes()).map_err(|error| format!("cannot write {out}: {error}"))?;
    println!("wrote {out}");
    print!("{json}");
    Ok(())
}

/// One timed WCP point on one benchmark model: best-of-3 ns/event plus the
/// run's stats (race count, epoch/pool hit rates).
fn time_wcp(
    trace: &rapid_trace::Trace,
    config: rapid_wcp::WcpConfig,
) -> (f64, usize, rapid_wcp::WcpStats) {
    let mut best = f64::INFINITY;
    let mut races = 0;
    let mut stats = rapid_wcp::WcpStats::default();
    for _ in 0..3 {
        let mut stream = rapid_wcp::WcpStream::with_config(trace.num_threads(), config);
        let started = std::time::Instant::now();
        for event in trace.events() {
            stream.on_event(event);
        }
        let elapsed = started.elapsed().as_secs_f64() * 1e9 / trace.len().max(1) as f64;
        let outcome = stream.finish();
        races = outcome.report.distinct_pairs();
        stats = outcome.stats;
        best = best.min(elapsed);
    }
    (best, races, stats)
}

/// Best-of-3 HB ns/event plus the distinct race-pair count.
fn time_hb(trace: &rapid_trace::Trace) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut races = 0;
    for _ in 0..3 {
        let mut stream = rapid_hb::HbStream::with_threads(trace.num_threads());
        let started = std::time::Instant::now();
        for event in trace.events() {
            stream.on_event(event);
        }
        let elapsed = started.elapsed().as_secs_f64() * 1e9 / trace.len().max(1) as f64;
        races = stream.finish().distinct_pairs();
        best = best.min(elapsed);
    }
    (best, races)
}

/// Runs the PR 7 bench-smoke: epoch-fast vs full-clock-reference WCP vs HB
/// ns/event on account + moldyn, hit rates, and the Table 1 shape check.
fn run_bench_smoke_wcp(out: &str, max_events: usize) -> Result<(), String> {
    let mut per_benchmark = Vec::new();
    for name in ["account", "moldyn"] {
        let spec = benchmarks::spec(name).ok_or_else(|| format!("{name} spec missing"))?;
        let target = spec.default_scaled_events().min(max_events);
        let model = benchmarks::benchmark_scaled(name, target)
            .ok_or_else(|| format!("cannot generate {name} model"))?;
        let trace = &model.trace;

        // Untimed warmup, then best-of-3 per detector configuration.
        time_wcp(trace, rapid_wcp::WcpConfig::default());
        let (fast_ns, fast_races, fast_stats) = time_wcp(trace, rapid_wcp::WcpConfig::default());
        let (reference_ns, reference_races, _) = time_wcp(trace, rapid_wcp::WcpConfig::reference());
        let (hb_ns, hb_races) = time_hb(trace);

        // Cross-check: the fast paths must not change a single verdict.
        if fast_races != reference_races {
            return Err(format!(
                "{name}: epoch-fast WCP found {fast_races} race pair(s), full-clock reference \
found {reference_races}"
            ));
        }
        let ratio = if hb_ns > 0.0 { fast_ns / hb_ns } else { 0.0 };
        per_benchmark.push(format!(
            "    {{\"benchmark\": \"{name}\", \"events\": {events}, \
\"wcp_ns_per_event\": {fast_ns:.1}, \"wcp_fullclock_ns_per_event\": {reference_ns:.1}, \
\"hb_ns_per_event\": {hb_ns:.1}, \"wcp_over_hb\": {ratio:.3}, \
\"wcp_races\": {fast_races}, \"hb_races\": {hb_races}, \
\"epoch_hit_rate\": {epoch_rate:.4}, \"pool_hit_rate\": {pool_rate:.4}, \
\"crosscheck_fast_equals_fullclock\": true}}",
            events = trace.len(),
            epoch_rate = fast_stats.epoch_hit_rate(),
            pool_rate = fast_stats.pool_hit_rate(),
        ));
    }

    // The Table 1 regression gate: the qualitative shape must stay 18/18.
    let report = table1_jobs(max_events, 1);
    let matching = report.rows_matching_paper();
    let rows = report.rows.len();
    if matching != rows {
        return Err(format!("Table 1 shape regressed: {matching}/{rows} rows match the paper"));
    }

    let json = format!(
        "{{\n  \"pr\": 7,\n  \"kind\": \"bench-smoke-wcp\",\n  \
\"workload\": \"account + moldyn models (max {max_events} events), best-of-3 per detector\",\n  \
\"detectors\": [\"wcp\", \"wcp-fullclock\", \"hb\"],\n  \
\"table1_rows_matching_paper\": {matching},\n  \"table1_rows\": {rows},\n  \
\"per_benchmark\": [\n{per_benchmark}\n  ]\n}}\n",
        per_benchmark = per_benchmark.join(",\n"),
    );
    let mut file =
        std::fs::File::create(out).map_err(|error| format!("cannot create {out}: {error}"))?;
    file.write_all(json.as_bytes()).map_err(|error| format!("cannot write {out}: {error}"))?;
    println!("wrote {out}");
    print!("{json}");
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(out) = args.bench_smoke {
        return match run_bench_smoke(&out, args.max_events) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }
    if let Some(out) = args.bench_smoke_dist {
        return match run_bench_smoke_dist(&out, args.max_events) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }
    if let Some(out) = args.bench_smoke_service {
        return match run_bench_smoke_service(&out, args.max_events) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }
    if let Some(out) = args.bench_smoke_wcp {
        return match run_bench_smoke_wcp(&out, args.max_events) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }
    if let Some(out) = args.bench_smoke_chaos {
        return match run_bench_smoke_chaos(&out, args.max_events) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }
    if let Some(out) = args.bench_smoke_placement {
        return match run_bench_smoke_placement(&out, args.max_events) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }

    let report = match args.benchmark {
        Some(name) => match table1_row(&name, args.max_events) {
            Some(row) => Table1Report { rows: vec![row] },
            None => {
                eprintln!("unknown benchmark `{name}`");
                return ExitCode::FAILURE;
            }
        },
        None => table1_jobs(args.max_events, args.jobs),
    };

    println!(
        "Table 1 reproduction (benchmark models scaled to <= {} events, jobs={})",
        args.max_events, args.jobs
    );
    println!("{}", report.render());
    println!(
        "{}/{} rows match the paper's qualitative shape (WCP >= HB, windowed MCM <= WCP, bold rows reproduced)",
        report.rows_matching_paper(),
        report.rows.len()
    );
    for row in &report.rows {
        println!(
            "  {:<14} paper: WCP {:>3} HB {:>3} RVmax {:>3}   measured: WCP {:>3} HB {:>3} RV {:>3}/{:>3}",
            row.spec.name,
            row.spec.wcp_races,
            row.spec.hb_races,
            row.spec.rv_max_races,
            row.wcp_races,
            row.hb_races,
            row.mcm_small_races,
            row.mcm_large_races,
        );
    }
    ExitCode::SUCCESS
}
