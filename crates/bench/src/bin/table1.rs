//! Regenerates Table 1 of the paper on the modelled benchmark workloads.
//!
//! ```text
//! cargo run --release -p rapid-bench --bin table1 [-- --max-events N] [--benchmark NAME]
//! ```

use std::env;
use std::process::ExitCode;

use rapid_bench::table1::{table1, table1_row, Table1Report};

fn parse_args() -> Result<(usize, Option<String>), String> {
    let mut max_events = 50_000usize;
    let mut benchmark = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-events" => {
                let value = args.next().ok_or("--max-events requires a value")?;
                max_events = value.parse().map_err(|_| format!("invalid event count {value}"))?;
            }
            "--benchmark" => {
                benchmark = Some(args.next().ok_or("--benchmark requires a value")?);
            }
            "--help" | "-h" => {
                return Err("usage: table1 [--max-events N] [--benchmark NAME]".to_owned())
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok((max_events, benchmark))
}

fn main() -> ExitCode {
    let (max_events, benchmark) = match parse_args() {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let report = match benchmark {
        Some(name) => match table1_row(&name, max_events) {
            Some(row) => Table1Report { rows: vec![row] },
            None => {
                eprintln!("unknown benchmark `{name}`");
                return ExitCode::FAILURE;
            }
        },
        None => table1(max_events),
    };

    println!("Table 1 reproduction (benchmark models scaled to <= {max_events} events)");
    println!("{}", report.render());
    println!(
        "{}/{} rows match the paper's qualitative shape (WCP >= HB, windowed MCM <= WCP, bold rows reproduced)",
        report.rows_matching_paper(),
        report.rows.len()
    );
    for row in &report.rows {
        println!(
            "  {:<14} paper: WCP {:>3} HB {:>3} RVmax {:>3}   measured: WCP {:>3} HB {:>3} RV {:>3}/{:>3}",
            row.spec.name,
            row.spec.wcp_races,
            row.spec.hb_races,
            row.spec.rv_max_races,
            row.wcp_races,
            row.hb_races,
            row.mcm_small_races,
            row.mcm_large_races,
        );
    }
    ExitCode::SUCCESS
}
