//! Regenerates Table 1 of the paper on the modelled benchmark workloads.
//!
//! ```text
//! cargo run --release -p rapid-bench --bin table1 [-- --max-events N] [--benchmark NAME]
//! cargo run --release -p rapid-bench --bin table1 -- --bench-smoke BENCH.json [--max-events N]
//! ```
//!
//! `--bench-smoke` runs two small rows through the batch path (materialized
//! trace) and the streaming path over *all three ingestion encodings*
//! (text via `BufRead`, text via mmap, binary `.rwf` — see `docs/FORMAT.md`)
//! and writes a machine-readable JSON point (per-path ingestion throughput
//! and stream wall-clock, race counts, peak streaming queue occupancy,
//! `VmHWM`) so the perf trajectory accumulates across PRs.

use std::env;
use std::fs::File;
use std::io::{BufReader, Write as _};
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use rapid_bench::table1::{table1, table1_row, Table1Report};
use rapid_gen::{benchmarks, emit};
use rapid_hb::{HbDetector, HbStream};
use rapid_trace::format::{self, BinReader, MmapReader, StreamReader};
use rapid_trace::Event;
use rapid_wcp::{WcpDetector, WcpStream};

fn parse_args() -> Result<(usize, Option<String>, Option<String>), String> {
    let mut max_events = 50_000usize;
    let mut benchmark = None;
    let mut bench_smoke = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-events" => {
                let value = args.next().ok_or("--max-events requires a value")?;
                max_events = value.parse().map_err(|_| format!("invalid event count {value}"))?;
            }
            "--benchmark" => {
                benchmark = Some(args.next().ok_or("--benchmark requires a value")?);
            }
            "--bench-smoke" => {
                bench_smoke = Some(args.next().ok_or("--bench-smoke requires an output path")?);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: table1 [--max-events N] [--benchmark NAME] [--bench-smoke OUT.json]"
                        .to_owned(),
                )
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok((max_events, benchmark, bench_smoke))
}

/// Reads the process's peak resident set size (`VmHWM`, in KiB) on Linux;
/// 0 where unavailable.
fn vm_hwm_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status.lines().find(|line| line.starts_with("VmHWM:")).and_then(|line| {
                line.split_whitespace().nth(1).and_then(|value| value.parse().ok())
            })
        })
        .unwrap_or(0)
}

/// Result of one WCP+HB streaming run over one ingestion path.
struct StreamRun {
    wall_ms: f64,
    wcp_races: usize,
    hb_races: usize,
    peak_queue: usize,
}

/// Streams WCP + HB over any event source, without materializing a trace.
fn stream_detectors(
    events: impl Iterator<Item = Result<Event, format::ParseError>>,
) -> Result<StreamRun, String> {
    let start = Instant::now();
    let mut wcp_stream = WcpStream::new();
    let mut hb_stream = HbStream::new();
    let mut peak_queue = 0usize;
    for event in events {
        let event = event.map_err(|error| format!("reparse failed: {error}"))?;
        wcp_stream.on_event(&event);
        hb_stream.on_event(&event);
        peak_queue = peak_queue.max(wcp_stream.live_queue_entries());
    }
    let wcp = wcp_stream.finish();
    let hb = hb_stream.finish();
    Ok(StreamRun {
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        wcp_races: wcp.report.distinct_pairs(),
        hb_races: hb.distinct_pairs(),
        peak_queue,
    })
}

/// Drains a reader without running detectors, returning events/second.
fn ingest_throughput(
    events: impl Iterator<Item = Result<Event, format::ParseError>>,
    expected: usize,
) -> Result<f64, String> {
    let start = Instant::now();
    let mut count = 0usize;
    for event in events {
        event.map_err(|error| format!("reparse failed: {error}"))?;
        count += 1;
    }
    if count != expected {
        return Err(format!("ingestion drained {count} events, expected {expected}"));
    }
    Ok(count as f64 / start.elapsed().as_secs_f64())
}

fn bufread_std(path: &Path) -> Result<StreamReader<BufReader<File>>, String> {
    let file =
        File::open(path).map_err(|error| format!("cannot reopen {}: {error}", path.display()))?;
    Ok(StreamReader::std(BufReader::new(file)))
}

/// One batch-vs-stream measurement of WCP + HB on a benchmark model, with
/// the streaming side run over all three ingestion paths (text-bufread,
/// text-mmap, binary `.rwf`).
///
/// The stream phase runs *first* and its `VmHWM` snapshot is taken before
/// the batch detectors run, so `process_vm_hwm_kb_after_stream` bounds the
/// streaming path's memory (given the generation baseline in
/// `process_vm_hwm_kb_before` — the trace must be materialized once in this
/// process to be written out at all).  The detector-level bounded-state
/// metric is `stream_peak_queue_entries`, which is process-independent.
fn bench_smoke_row(name: &str, max_events: usize) -> Result<String, String> {
    let spec = benchmarks::spec(name).ok_or_else(|| format!("unknown benchmark {name}"))?;
    let events = spec.default_scaled_events().min(max_events);
    let model = benchmarks::benchmark_scaled(name, events)
        .ok_or_else(|| format!("cannot generate {name}"))?;

    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let std_path = dir.join(format!("rapid-bench-{name}-{pid}.std"));
    let rwf_path = dir.join(format!("rapid-bench-{name}-{pid}.rwf"));
    emit::write_trace_file(&model.trace, &std_path)
        .map_err(|error| format!("cannot write {}: {error}", std_path.display()))?;
    emit::write_trace_file(&model.trace, &rwf_path)
        .map_err(|error| format!("cannot write {}: {error}", rwf_path.display()))?;
    let open_mmap = |path: &Path| {
        MmapReader::open_std(path)
            .map_err(|error| format!("cannot map {}: {error}", path.display()))
    };
    let open_bin = |path: &Path| {
        BinReader::open(path).map_err(|error| format!("cannot map {}: {error}", path.display()))
    };

    let hwm_before = vm_hwm_kb();

    // Untimed warmup (page cache, allocator, branch predictors): one full
    // binary stream pass.  The timed phases below then start from the same
    // warm state regardless of their order.
    stream_detectors(open_bin(&rwf_path)?)?;

    // Pure ingestion throughput (no detectors) per path.
    let expected = model.trace.len();
    let eps_bufread = ingest_throughput(bufread_std(&std_path)?, expected)?;
    let eps_mmap = ingest_throughput(open_mmap(&std_path)?, expected)?;
    let eps_binary = ingest_throughput(open_bin(&rwf_path)?, expected)?;

    // Full stream (file -> reader -> streaming cores, no Trace) per path.
    let run_bufread = stream_detectors(bufread_std(&std_path)?)?;
    let run_mmap = stream_detectors(open_mmap(&std_path)?)?;
    let run_binary = stream_detectors(open_bin(&rwf_path)?)?;
    let hwm_after_stream = vm_hwm_kb();
    std::fs::remove_file(&std_path).ok();
    std::fs::remove_file(&rwf_path).ok();

    // Batch: detectors over the materialized trace.
    let batch_start = Instant::now();
    let batch_wcp = WcpDetector::new().analyze(&model.trace);
    let batch_hb = HbDetector::new().detect(&model.trace);
    let batch_ms = batch_start.elapsed().as_secs_f64() * 1e3;

    let wcp_races = batch_wcp.report.distinct_pairs();
    let hb_races = batch_hb.distinct_pairs();
    for (path, run) in
        [("text-bufread", &run_bufread), ("text-mmap", &run_mmap), ("binary", &run_binary)]
    {
        if run.wcp_races != wcp_races || run.hb_races != hb_races {
            return Err(format!(
                "{name}: {path} stream races (wcp={}, hb={}) diverged from batch (wcp={wcp_races}, hb={hb_races})",
                run.wcp_races, run.hb_races
            ));
        }
    }
    let peak_queue = run_bufread.peak_queue.max(run_mmap.peak_queue).max(run_binary.peak_queue);

    Ok(format!(
        "    {{\"benchmark\": \"{name}\", \"events\": {events}, \
\"wcp_races\": {wcp_races}, \"hb_races\": {hb_races}, \
\"batch_wall_ms\": {batch_ms:.3}, \
\"stream_wall_ms_text_bufread\": {bufread_ms:.3}, \
\"stream_wall_ms_text_mmap\": {mmap_ms:.3}, \
\"stream_wall_ms_binary\": {binary_ms:.3}, \
\"ingest_eps_text_bufread\": {eps_bufread:.0}, \
\"ingest_eps_text_mmap\": {eps_mmap:.0}, \
\"ingest_eps_binary\": {eps_binary:.0}, \
\"stream_peak_queue_entries\": {peak_queue}, \
\"process_vm_hwm_kb_before\": {hwm_before}, \
\"process_vm_hwm_kb_after_stream\": {hwm_after_stream}}}",
        events = model.trace.len(),
        bufread_ms = run_bufread.wall_ms,
        mmap_ms = run_mmap.wall_ms,
        binary_ms = run_binary.wall_ms,
    ))
}

/// Runs the bench-smoke comparison on two small rows and writes the JSON
/// point to `out`.
fn run_bench_smoke(out: &str, max_events: usize) -> Result<(), String> {
    let rows = ["account", "moldyn"]
        .iter()
        .map(|name| bench_smoke_row(name, max_events))
        .collect::<Result<Vec<_>, _>>()?;
    let json = format!(
        "{{\n  \"pr\": 3,\n  \"kind\": \"bench-smoke\",\n  \"detectors\": [\"wcp\", \"hb\"],\n  \
\"ingestion_paths\": [\"text-bufread\", \"text-mmap\", \"binary\"],\n  \
\"rows\": [\n{}\n  ],\n  \"process_vm_hwm_kb_final\": {}\n}}\n",
        rows.join(",\n"),
        vm_hwm_kb(),
    );
    let mut file =
        std::fs::File::create(out).map_err(|error| format!("cannot create {out}: {error}"))?;
    file.write_all(json.as_bytes()).map_err(|error| format!("cannot write {out}: {error}"))?;
    println!("wrote {out}");
    print!("{json}");
    Ok(())
}

fn main() -> ExitCode {
    let (max_events, benchmark, bench_smoke) = match parse_args() {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(out) = bench_smoke {
        return match run_bench_smoke(&out, max_events) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }

    let report = match benchmark {
        Some(name) => match table1_row(&name, max_events) {
            Some(row) => Table1Report { rows: vec![row] },
            None => {
                eprintln!("unknown benchmark `{name}`");
                return ExitCode::FAILURE;
            }
        },
        None => table1(max_events),
    };

    println!("Table 1 reproduction (benchmark models scaled to <= {max_events} events)");
    println!("{}", report.render());
    println!(
        "{}/{} rows match the paper's qualitative shape (WCP >= HB, windowed MCM <= WCP, bold rows reproduced)",
        report.rows_matching_paper(),
        report.rows.len()
    );
    for row in &report.rows {
        println!(
            "  {:<14} paper: WCP {:>3} HB {:>3} RVmax {:>3}   measured: WCP {:>3} HB {:>3} RV {:>3}/{:>3}",
            row.spec.name,
            row.spec.wcp_races,
            row.spec.hb_races,
            row.spec.rv_max_races,
            row.wcp_races,
            row.hb_races,
            row.mcm_small_races,
            row.mcm_large_races,
        );
    }
    ExitCode::SUCCESS
}
