//! Regenerates Figure 7 of the paper: windowed-MCM race counts across the
//! window-size × solver-timeout grid for eclipse, ftpserver and derby.
//!
//! ```text
//! cargo run --release -p rapid-bench --bin figure7 [-- --max-events N]
//! ```

use std::env;
use std::process::ExitCode;

use rapid_bench::figure7::figure7;

fn main() -> ExitCode {
    let mut max_events = 50_000usize;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-events" => match args.next().and_then(|value| value.parse().ok()) {
                Some(value) => max_events = value,
                None => {
                    eprintln!("--max-events requires a numeric value");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: figure7 [--max-events N]");
                return ExitCode::FAILURE;
            }
            other => {
                eprintln!("unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = figure7(max_events);
    println!("Figure 7 reproduction (benchmark models scaled to <= {max_events} events)");
    println!("{}", report.render());
    println!("Each cell is the number of distinct race pairs the windowed MCM baseline reports;");
    println!(
        "the last row is whole-trace WCP at the same scale, which no windowed setting reaches."
    );
    ExitCode::SUCCESS
}
