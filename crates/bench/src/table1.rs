//! Reproduction of Table 1: race counts, times and queue occupancy.
//!
//! Since PR 2 the whole row is produced by **one pass** of the streaming
//! [`Engine`]: WCP, HB and both windowed-MCM configurations are registered
//! as [`Detector`](rapid_engine::Detector)s and every event of the
//! benchmark model is fanned out once, with per-detector wall-clock time
//! accounted by the engine (previously each detector re-walked the trace).
//! Since PR 4 the *rows* themselves ride the engine's parallel work queue
//! ([`rapid_engine::driver::parallel_map`]): [`table1_jobs`] analyzes
//! several benchmarks concurrently, with row order — and race counts —
//! independent of the worker count.  Per-row timing columns measure the
//! same work either way, but under `jobs > 1` they share the machine, so
//! compare timing columns at `jobs = 1`.

use std::fmt;
use std::time::Duration;

use rapid_engine::driver::parallel_map;
use rapid_engine::Engine;
use rapid_gen::benchmarks::{self, BenchmarkSpec};
use rapid_hb::HbStream;
use rapid_mcm::{McmConfig, McmStream};
use rapid_wcp::WcpStream;

/// One reproduced row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// The benchmark spec (paper's columns 1–5 plus its reported results).
    pub spec: BenchmarkSpec,
    /// Number of events in the generated (scaled) trace — column 3.
    pub events: usize,
    /// Threads in the generated trace — column 4.
    pub threads: usize,
    /// Locks in the generated trace — column 5.
    pub locks: usize,
    /// Distinct WCP race pairs measured — column 6.
    pub wcp_races: usize,
    /// Distinct HB race pairs measured — column 7.
    pub hb_races: usize,
    /// Distinct races from the MCM baseline at (w = 1K, 60 s) — column 8.
    pub mcm_small_races: usize,
    /// Distinct races from the MCM baseline at (w = 10K, 240 s) — column 9.
    pub mcm_large_races: usize,
    /// Maximum WCP queue occupancy as a percentage of events — column 11.
    pub queue_percentage: f64,
    /// WCP analysis time — column 12.
    pub wcp_time: Duration,
    /// HB analysis time — column 13.
    pub hb_time: Duration,
    /// MCM (w = 1K, 60 s) analysis time — column 14.
    pub mcm_small_time: Duration,
    /// MCM (w = 10K, 240 s) analysis time — column 15.
    pub mcm_large_time: Duration,
}

impl Table1Row {
    /// Returns true when the measured race counts have the shape the paper
    /// reports: WCP ⊇ HB ⊇ nothing, WCP ≥ windowed MCM, and WCP > HB exactly
    /// for the benchmarks whose Table 1 row is boldfaced.
    pub fn shape_matches_paper(&self) -> bool {
        let wcp_at_least_hb = self.wcp_races >= self.hb_races;
        let windowed_not_better =
            self.mcm_small_races <= self.wcp_races && self.mcm_large_races <= self.wcp_races;
        let bold = self.spec.wcp_races > self.spec.hb_races;
        let bold_reproduced = if bold { self.wcp_races > self.hb_races } else { true };
        wcp_at_least_hb && windowed_not_better && bold_reproduced
    }
}

impl fmt::Display for Table1Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} {:>9} {:>4} {:>6} | {:>4} {:>4} {:>8} {:>9} | {:>6.1}% | {:>9.2?} {:>9.2?} {:>9.2?} {:>9.2?}",
            self.spec.name,
            self.events,
            self.threads,
            self.locks,
            self.wcp_races,
            self.hb_races,
            self.mcm_small_races,
            self.mcm_large_races,
            self.queue_percentage,
            self.wcp_time,
            self.hb_time,
            self.mcm_small_time,
            self.mcm_large_time,
        )
    }
}

/// The full reproduced table.
#[derive(Debug, Clone, Default)]
pub struct Table1Report {
    /// One row per benchmark, in Table 1 order.
    pub rows: Vec<Table1Row>,
}

impl Table1Report {
    /// Number of rows whose qualitative shape matches the paper.
    pub fn rows_matching_paper(&self) -> usize {
        self.rows.iter().filter(|row| row.shape_matches_paper()).count()
    }

    /// Renders the table with a header, mirroring the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<14} {:>9} {:>4} {:>6} | {:>4} {:>4} {:>8} {:>9} | {:>7} | {:>9} {:>9} {:>9} {:>9}\n",
            "program",
            "#events",
            "#thr",
            "#locks",
            "WCP",
            "HB",
            "RV(1K)",
            "RV(10K)",
            "queue%",
            "WCP t",
            "HB t",
            "RV1K t",
            "RV10K t"
        ));
        out.push_str(&"-".repeat(120));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.to_string());
            out.push('\n');
        }
        out
    }
}

/// Runs all detectors on one benchmark model and fills in its row.
///
/// `max_events` caps the generated trace size (the paper's traces go up to
/// 216 M events; the default harness scales each benchmark down to at most
/// 50 K events — see `EXPERIMENTS.md`).
pub fn table1_row(name: &str, max_events: usize) -> Option<Table1Row> {
    let spec = benchmarks::spec(name)?;
    let events = spec.default_scaled_events().min(max_events);
    let model = benchmarks::benchmark_scaled(name, events)?;
    let trace = &model.trace;
    let stats = trace.stats();

    // One engine pass drives all four analyses; threads are pre-registered
    // so the streaming cores behave exactly like the whole-trace algorithm.
    let (small_config, large_config) = McmConfig::table1_pair();
    let mut engine = Engine::new();
    engine.register(Box::new(WcpStream::with_threads(trace.num_threads())));
    engine.register(Box::new(HbStream::with_threads(trace.num_threads())));
    engine.register(Box::new(McmStream::new(small_config)));
    engine.register(Box::new(McmStream::new(large_config)));
    engine.run_trace(trace);
    let runs = engine.finish(trace);
    let [wcp, hb, mcm_small, mcm_large] = runs.as_slice() else {
        unreachable!("four detectors registered");
    };

    Some(Table1Row {
        spec,
        events: stats.events,
        threads: stats.threads,
        locks: stats.locks,
        wcp_races: wcp.outcome.distinct_pairs(),
        hb_races: hb.outcome.distinct_pairs(),
        mcm_small_races: mcm_small.outcome.distinct_pairs(),
        mcm_large_races: mcm_large.outcome.distinct_pairs(),
        queue_percentage: wcp.outcome.metric("max_queue_percentage").unwrap_or(0.0),
        wcp_time: wcp.time,
        hb_time: hb.time,
        mcm_small_time: mcm_small.time,
        mcm_large_time: mcm_large.time,
    })
}

/// Reproduces the whole table (all 18 benchmarks) with the given event cap,
/// sequentially (`jobs = 1`).
pub fn table1(max_events: usize) -> Table1Report {
    table1_jobs(max_events, 1)
}

/// Reproduces the whole table with `jobs` rows analyzed concurrently on the
/// engine's worker-pool work queue.  Row order and race counts are
/// independent of the worker count; only wall-clock columns vary.
pub fn table1_jobs(max_events: usize, jobs: usize) -> Table1Report {
    let names = benchmarks::benchmark_names();
    let rows = parallel_map(&names, jobs, |name| table1_row(name, max_events))
        .into_iter()
        .flatten()
        .collect();
    Table1Report { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_row_has_paper_shape() {
        let row = table1_row("account", 5_000).expect("account exists");
        assert_eq!(row.spec.name, "account");
        assert_eq!(row.wcp_races, row.spec.wcp_races);
        assert_eq!(row.hb_races, row.spec.hb_races);
        assert!(row.shape_matches_paper());
        assert!(row.queue_percentage >= 0.0);
    }

    #[test]
    fn wcp_only_benchmark_reproduces_the_bold_entry() {
        // jigsaw is one of the boldfaced rows: WCP > HB.
        let row = table1_row("jigsaw", 4_000).expect("jigsaw exists");
        assert!(row.wcp_races > row.hb_races, "{row}");
        assert!(row.shape_matches_paper());
    }

    #[test]
    fn unknown_benchmark_returns_none() {
        assert!(table1_row("not-a-benchmark", 1_000).is_none());
    }

    #[test]
    fn concurrent_rows_match_sequential_rows() {
        let sequential = table1_jobs(1_000, 1);
        let concurrent = table1_jobs(1_000, 4);
        assert_eq!(sequential.rows.len(), concurrent.rows.len());
        for (left, right) in sequential.rows.iter().zip(&concurrent.rows) {
            assert_eq!(left.spec.name, right.spec.name, "row order is the input order");
            assert_eq!(left.wcp_races, right.wcp_races, "{}", left.spec.name);
            assert_eq!(left.hb_races, right.hb_races, "{}", left.spec.name);
            assert_eq!(left.mcm_small_races, right.mcm_small_races, "{}", left.spec.name);
            assert_eq!(left.mcm_large_races, right.mcm_large_races, "{}", left.spec.name);
        }
    }

    #[test]
    fn small_subset_renders_and_matches() {
        let report = Table1Report {
            rows: ["array", "account", "critical"]
                .iter()
                .filter_map(|name| table1_row(name, 2_000))
                .collect(),
        };
        assert_eq!(report.rows.len(), 3);
        assert_eq!(report.rows_matching_paper(), 3);
        let rendered = report.render();
        assert!(rendered.contains("program"));
        assert!(rendered.contains("account"));
    }
}
