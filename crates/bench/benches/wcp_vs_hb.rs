//! The WCP/HB gap, the number this PR exists to close.
//!
//! The paper's central claim is linear-time WCP detection; HB is the
//! linear-time floor any WCP implementation is measured against.  This bench
//! puts the epoch-fast WCP core, the full-vector-clock WCP reference
//! (`WcpConfig::reference`) and the HB core side by side on the Table 1
//! benchmark models so the ratio — and the fast paths' share of it — is one
//! criterion run away:
//!
//! ```text
//! cargo bench -p rapid-bench --bench wcp_vs_hb
//! ```

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rapid_gen::benchmarks;
use rapid_hb::HbStream;
use rapid_trace::Trace;
use rapid_wcp::{WcpConfig, WcpStream};

fn stream_wcp(trace: &Trace, config: WcpConfig) -> usize {
    let mut stream = WcpStream::with_config(trace.num_threads(), config);
    for event in trace.events() {
        stream.on_event(event);
    }
    stream.finish().report.len()
}

fn stream_hb(trace: &Trace) -> usize {
    let mut stream = HbStream::with_threads(trace.num_threads());
    for event in trace.events() {
        stream.on_event(event);
    }
    stream.finish().len()
}

fn wcp_vs_hb(c: &mut Criterion) {
    for name in ["account", "moldyn"] {
        let spec = benchmarks::spec(name).expect("table 1 benchmark exists");
        let target = spec.default_scaled_events().min(50_000);
        let model = benchmarks::benchmark_scaled(name, target).expect("model generates");
        let trace = model.trace;

        let mut group = c.benchmark_group(format!("wcp_vs_hb_{name}"));
        group.sample_size(20);
        group.throughput(Throughput::Elements(trace.len() as u64));
        group.bench_function("wcp_epoch_fast", |b| {
            b.iter(|| stream_wcp(&trace, WcpConfig::default()))
        });
        group.bench_function("wcp_full_clock", |b| {
            b.iter(|| stream_wcp(&trace, WcpConfig::reference()))
        });
        group.bench_function("hb", |b| b.iter(|| stream_hb(&trace)));
        group.finish();
    }
}

criterion_group!(benches, wcp_vs_hb);
criterion_main!(benches);
