//! Scaling benches for Theorem 3: WCP analysis time is `O(N · (T² + L))`.
//!
//! Three sweeps hold two parameters fixed and scale the third: the trace
//! length `N`, the thread count `T`, and the lock count `L`.  A fourth group
//! runs the Figure 8 lower-bound family, whose queue occupancy is the
//! worst-case space behaviour of Theorem 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rapid_gen::lower_bound::{bits_of, lower_bound_trace};
use rapid_gen::random::RandomTraceConfig;
use rapid_hb::HbDetector;
use rapid_wcp::WcpDetector;

fn scaling_events(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_events");
    group.sample_size(10);
    for &events in &[5_000usize, 10_000, 20_000, 40_000] {
        let trace = RandomTraceConfig::sized(4, 8, 64, events, 11).generate();
        group.throughput(Throughput::Elements(trace.len() as u64));
        group.bench_with_input(BenchmarkId::new("wcp", events), &trace, |b, trace| {
            b.iter(|| WcpDetector::new().detect(trace))
        });
        group.bench_with_input(BenchmarkId::new("hb", events), &trace, |b, trace| {
            b.iter(|| HbDetector::new().detect(trace))
        });
    }
    group.finish();
}

fn scaling_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_threads");
    group.sample_size(10);
    for &threads in &[2usize, 4, 8, 16] {
        let trace = RandomTraceConfig::sized(threads, 8, 64, 10_000, 12).generate();
        group.bench_with_input(BenchmarkId::new("wcp", threads), &trace, |b, trace| {
            b.iter(|| WcpDetector::new().detect(trace))
        });
    }
    group.finish();
}

fn scaling_locks(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_locks");
    group.sample_size(10);
    for &locks in &[1usize, 8, 64, 256] {
        let trace = RandomTraceConfig::sized(4, locks, 64, 10_000, 13).generate();
        group.bench_with_input(BenchmarkId::new("wcp", locks), &trace, |b, trace| {
            b.iter(|| WcpDetector::new().detect(trace))
        });
    }
    group.finish();
}

fn scaling_lower_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_lower_bound");
    group.sample_size(10);
    for &bits in &[8usize, 32, 128] {
        let instance = lower_bound_trace(&bits_of(0, bits), &bits_of(0, bits));
        group.throughput(Throughput::Elements(instance.trace.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("wcp_figure8", bits),
            &instance.trace,
            |b, trace| b.iter(|| WcpDetector::new().analyze(trace)),
        );
    }
    group.finish();
}

criterion_group!(benches, scaling_events, scaling_threads, scaling_locks, scaling_lower_bound);
criterion_main!(benches);
