//! Criterion timings behind Table 1 columns 12–13 (WCP and HB analysis time
//! per benchmark model).
//!
//! The `table1` binary reports one-shot wall-clock times; this bench gives
//! statistically sound timings for a representative subset of the benchmark
//! models (small, medium and large rows of the table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rapid_gen::benchmarks;
use rapid_hb::HbDetector;
use rapid_wcp::WcpDetector;

/// A spread of Table 1 rows: tiny (account), medium (bubblesort, ftpserver)
/// and scaled-down large ones (derby, eclipse, xalan).
const SUBSET: [(&str, usize); 6] = [
    ("account", 130),
    ("bubblesort", 4_000),
    ("ftpserver", 20_000),
    ("derby", 20_000),
    ("eclipse", 20_000),
    ("xalan", 20_000),
];

fn table1_times(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_analysis_time");
    group.sample_size(10);
    for (name, events) in SUBSET {
        let model = benchmarks::benchmark_scaled(name, events).expect("benchmark exists");
        group.throughput(Throughput::Elements(model.trace.len() as u64));
        group.bench_with_input(BenchmarkId::new("wcp", name), &model.trace, |b, trace| {
            b.iter(|| WcpDetector::new().detect(trace))
        });
        group.bench_with_input(BenchmarkId::new("hb", name), &model.trace, |b, trace| {
            b.iter(|| HbDetector::new().detect(trace))
        });
    }
    group.finish();
}

criterion_group!(benches, table1_times);
criterion_main!(benches);
