//! Ingestion-path throughput: text via `BufRead`, text via mmap, binary.
//!
//! BENCH_pr2.json showed the PR 2 stream path spending ~2× the batch
//! wall-clock on moldyn, dominated by per-line parsing and interning rather
//! than detection — the opposite of what a constant-work-per-event
//! algorithm should look like.  This bench isolates pure ingestion (drain a
//! reader, count events, run no detector) over the same file in each
//! encoding, so the decision table in README's "Ingestion pipeline" section
//! stays backed by numbers.

use std::fs::File;
use std::io::BufReader;

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rapid_gen::{benchmarks, emit};
use rapid_trace::format::{BinReader, MmapReader, StreamReader};

const EVENTS: usize = 20_000;

fn ingestion(c: &mut Criterion) {
    let model = benchmarks::benchmark_scaled("moldyn", EVENTS).expect("known benchmark");
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let std_path = dir.join(format!("rapid-ingest-{pid}.std"));
    let rwf_path = dir.join(format!("rapid-ingest-{pid}.rwf"));
    emit::write_trace_file(&model.trace, &std_path).expect("write std fixture");
    emit::write_trace_file(&model.trace, &rwf_path).expect("write rwf fixture");
    let events = model.trace.len();

    let mut group = c.benchmark_group("ingestion_moldyn_20k");
    group.sample_size(10);
    group.throughput(Throughput::Elements(events as u64));
    fn drain(
        reader: impl Iterator<Item = Result<rapid_trace::Event, rapid_trace::format::ParseError>>,
    ) -> usize {
        let mut count = 0;
        for event in reader {
            black_box(event.expect("fixture parses"));
            count += 1;
        }
        count
    }

    group.bench_function("text_bufread", |b| {
        b.iter(|| {
            let file = File::open(&std_path).expect("fixture exists");
            assert_eq!(drain(StreamReader::std(BufReader::new(file))), events);
        })
    });
    group.bench_function("text_mmap", |b| {
        b.iter(|| {
            assert_eq!(drain(MmapReader::open_std(&std_path).expect("fixture maps")), events);
        })
    });
    group.bench_function("binary", |b| {
        b.iter(|| {
            assert_eq!(drain(BinReader::open(&rwf_path).expect("fixture maps")), events);
        })
    });
    group.finish();

    std::fs::remove_file(&std_path).ok();
    std::fs::remove_file(&rwf_path).ok();
}

criterion_group!(benches, ingestion);
criterion_main!(benches);
