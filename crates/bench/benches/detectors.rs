//! Head-to-head detector comparison on a common workload.
//!
//! Columns 12–15 of Table 1 compare the analysis times of WCP, HB and the
//! windowed predictive baseline; this bench measures all detectors in the
//! workspace on the same generated trace.  The CP closure is run on a much
//! smaller input (it is polynomial, which is exactly why the paper does not
//! run it at scale).

use criterion::{criterion_group, criterion_main, Criterion};
use rapid_cp::CpDetector;
use rapid_gen::random::RandomTraceConfig;
use rapid_hb::{FastTrackDetector, HbDetector};
use rapid_mcm::{McmConfig, McmDetector};
use rapid_wcp::WcpDetector;

fn linear_detectors(c: &mut Criterion) {
    let trace = RandomTraceConfig::sized(6, 10, 128, 20_000, 21).generate();
    let mut group = c.benchmark_group("linear_detectors_20k");
    group.sample_size(10);
    group.bench_function("wcp", |b| b.iter(|| WcpDetector::new().detect(&trace)));
    group.bench_function("hb_vector_clock", |b| b.iter(|| HbDetector::new().detect(&trace)));
    group.bench_function("hb_fasttrack", |b| b.iter(|| FastTrackDetector::new().detect(&trace)));
    group.bench_function("mcm_w1k", |b| {
        b.iter(|| McmDetector::new(McmConfig::new(1_000, 60)).detect(&trace))
    });
    group.finish();
}

fn polynomial_baseline(c: &mut Criterion) {
    // CP closure: whole-trace on a small input, windowed on a mid-sized one.
    let small = RandomTraceConfig::sized(4, 4, 16, 400, 22).generate();
    let medium = RandomTraceConfig::sized(4, 4, 16, 4_000, 23).generate();
    let mut group = c.benchmark_group("cp_baseline");
    group.sample_size(10);
    group.bench_function("cp_whole_trace_400", |b| b.iter(|| CpDetector::new().detect(&small)));
    group.bench_function("cp_windowed_200_on_4k", |b| {
        b.iter(|| CpDetector::windowed(200).detect(&medium))
    });
    group.finish();
}

criterion_group!(benches, linear_detectors, polynomial_baseline);
criterion_main!(benches);
